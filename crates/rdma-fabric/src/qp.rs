//! Queue pairs: the send/receive endpoints of an RDMA connection.
//!
//! A [`QueuePair`] is owned by exactly one actor (its virtual clock) and is
//! connected to exactly one peer queue pair, mirroring the reliable-connected
//! (RC) transport rFaaS uses. Posting to the send queue is non-blocking — the
//! actor only pays the WQE/doorbell cost — while the simulated NIC streams
//! the data and delivers completions with fabric-model timestamps.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use sim_core::{SimTime, VirtualClock};

use crate::cq::CompletionQueue;
use crate::device::{DeviceFunction, NicProfile};
use crate::error::{FabricError, Result};
use crate::fabric::{Fabric, FabricNode};
use crate::memory::{MemoryRegion, RemoteMemoryHandle};
use crate::pd::ProtectionDomain;
use crate::srq::SharedReceiveQueue;
use crate::verbs::{CompletionStatus, OpCode, RecvRequest, SendRequest, Sge, WorkCompletion};

/// Everything needed to create queue pairs for one actor on one node.
#[derive(Clone)]
pub struct Endpoint {
    /// The fabric the endpoint attaches to.
    pub fabric: Arc<Fabric>,
    /// The node (machine) the actor runs on.
    pub node: Arc<FabricNode>,
    /// The actor's virtual clock.
    pub clock: Arc<VirtualClock>,
    /// The protection domain holding the actor's registrations.
    pub pd: ProtectionDomain,
    /// Physical function (bare metal) or SR-IOV virtual function (container).
    pub function: DeviceFunction,
}

impl Endpoint {
    /// Create an endpoint on `node` with a fresh clock and protection domain,
    /// attached to the physical function.
    pub fn new(fabric: &Arc<Fabric>, node: &Arc<FabricNode>) -> Endpoint {
        Endpoint {
            fabric: Arc::clone(fabric),
            node: Arc::clone(node),
            clock: VirtualClock::shared(),
            pd: ProtectionDomain::new(),
            function: DeviceFunction::Physical,
        }
    }

    /// Same endpoint attached through an SR-IOV virtual function.
    pub fn virtualized(mut self) -> Endpoint {
        self.function = DeviceFunction::Virtual;
        self
    }

    /// Replace the clock (actors that share a clock across several QPs).
    pub fn with_clock(mut self, clock: Arc<VirtualClock>) -> Endpoint {
        self.clock = clock;
        self
    }

    /// Replace the protection domain.
    pub fn with_pd(mut self, pd: ProtectionDomain) -> Endpoint {
        self.pd = pd;
        self
    }
}

impl std::fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Endpoint")
            .field("node", &self.node.name())
            .field("function", &self.function)
            .finish()
    }
}

/// Connection state of a queue pair (a simplified RESET→INIT→RTS ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Created but not yet connected; receives may be pre-posted.
    Init,
    /// Connected to a peer; all verbs allowed.
    Connected,
    /// Torn down; all verbs fail.
    Disconnected,
}

impl QpState {
    fn name(self) -> &'static str {
        match self {
            QpState::Init => "INIT",
            QpState::Connected => "CONNECTED",
            QpState::Disconnected => "DISCONNECTED",
        }
    }
}

static NEXT_QP_NUM: AtomicU32 = AtomicU32::new(1);

pub(crate) struct QpInner {
    qp_num: u32,
    fabric: Arc<Fabric>,
    node: Arc<FabricNode>,
    clock: Arc<VirtualClock>,
    pd: ProtectionDomain,
    function: DeviceFunction,
    send_cq: CompletionQueue,
    recv_cq: CompletionQueue,
    recv_queue: Mutex<VecDeque<RecvRequest>>,
    /// When set, incoming messages consume buffers from this shared queue
    /// instead of the private `recv_queue` (ibv SRQ association).
    srq: RwLock<Option<SharedReceiveQueue>>,
    peer: RwLock<Option<Arc<QpInner>>>,
    state: RwLock<QpState>,
    ops_posted: AtomicU64,
}

impl std::fmt::Debug for QpInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QpInner")
            .field("qp_num", &self.qp_num)
            .field("node", &self.node.name())
            .field("state", &*self.state.read())
            .finish()
    }
}

/// One endpoint of a reliable RDMA connection.
#[derive(Debug, Clone)]
pub struct QueuePair {
    inner: Arc<QpInner>,
}

impl QueuePair {
    /// Create an unconnected queue pair for `endpoint`.
    pub fn new(endpoint: &Endpoint) -> QueuePair {
        let profile = endpoint.fabric.profile().clone();
        let send_cq = CompletionQueue::new(
            Arc::clone(&endpoint.clock),
            Arc::clone(&endpoint.node),
            profile.clone(),
            endpoint.function,
        );
        let recv_cq = CompletionQueue::new(
            Arc::clone(&endpoint.clock),
            Arc::clone(&endpoint.node),
            profile,
            endpoint.function,
        );
        QueuePair {
            inner: Arc::new(QpInner {
                qp_num: NEXT_QP_NUM.fetch_add(1, Ordering::Relaxed),
                fabric: Arc::clone(&endpoint.fabric),
                node: Arc::clone(&endpoint.node),
                clock: Arc::clone(&endpoint.clock),
                pd: endpoint.pd.clone(),
                function: endpoint.function,
                send_cq,
                recv_cq,
                recv_queue: Mutex::new(VecDeque::new()),
                srq: RwLock::new(None),
                peer: RwLock::new(None),
                state: RwLock::new(QpState::Init),
                ops_posted: AtomicU64::new(0),
            }),
        }
    }

    /// Queue pair number.
    pub fn qp_num(&self) -> u32 {
        self.inner.qp_num
    }

    /// Current connection state.
    pub fn state(&self) -> QpState {
        *self.inner.state.read()
    }

    /// The completion queue receiving send-side completions.
    pub fn send_cq(&self) -> &CompletionQueue {
        &self.inner.send_cq
    }

    /// The completion queue receiving receive-side completions.
    pub fn recv_cq(&self) -> &CompletionQueue {
        &self.inner.recv_cq
    }

    /// The protection domain the QP validates remote keys against.
    pub fn pd(&self) -> &ProtectionDomain {
        &self.inner.pd
    }

    /// The owning actor's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.inner.clock
    }

    /// The node this endpoint runs on.
    pub fn node(&self) -> &Arc<FabricNode> {
        &self.inner.node
    }

    /// Device function (physical or SR-IOV virtual) of this endpoint.
    pub fn function(&self) -> DeviceFunction {
        self.inner.function
    }

    /// Number of send-queue operations posted so far.
    pub fn ops_posted(&self) -> u64 {
        self.inner.ops_posted.load(Ordering::Relaxed)
    }

    /// Connect two queue pairs directly (used by the connection manager and
    /// by tests). Both must be in the `Init` state.
    pub fn connect_pair(a: &QueuePair, b: &QueuePair) -> Result<()> {
        for qp in [a, b] {
            let state = qp.state();
            if state != QpState::Init {
                return Err(FabricError::InvalidQpState {
                    operation: "connect",
                    state: state.name(),
                });
            }
        }
        *a.inner.peer.write() = Some(Arc::clone(&b.inner));
        *b.inner.peer.write() = Some(Arc::clone(&a.inner));
        *a.inner.state.write() = QpState::Connected;
        *b.inner.state.write() = QpState::Connected;
        Ok(())
    }

    /// Associate this queue pair with a shared receive queue: incoming
    /// messages will consume buffers from `srq` (with a flow-control budget
    /// of `credit` concurrently held buffers) instead of the private receive
    /// queue. Mirrors passing `srq` to `ibv_create_qp`. Completions still
    /// land on this QP's own receive CQ.
    pub fn attach_srq(&self, srq: &SharedReceiveQueue, credit: usize) {
        srq.attach(self.inner.qp_num, credit);
        *self.inner.srq.write() = Some(srq.clone());
    }

    /// The shared receive queue this QP consumes from, if any.
    pub fn srq(&self) -> Option<SharedReceiveQueue> {
        self.inner.srq.read().clone()
    }

    /// Tear down the connection. Peers observe `ConnectionLost` on their next
    /// operation and blocked completion waits wake with `None`.
    pub fn disconnect(&self) {
        let peer = self.inner.peer.write().take();
        *self.inner.state.write() = QpState::Disconnected;
        self.inner.send_cq.disconnect();
        self.inner.recv_cq.disconnect();
        if let Some(srq) = self.inner.srq.write().take() {
            srq.detach(self.inner.qp_num);
        }
        if let Some(peer) = peer {
            *peer.state.write() = QpState::Disconnected;
            peer.peer.write().take();
            peer.send_cq.disconnect();
            peer.recv_cq.disconnect();
            if let Some(srq) = peer.srq.write().take() {
                srq.detach(peer.qp_num);
            }
        }
    }

    /// Whether the peer endpoint is still connected.
    pub fn is_connected(&self) -> bool {
        self.state() == QpState::Connected && self.inner.peer.read().is_some()
    }

    /// Post a receive work request: a buffer waiting for a SEND or
    /// WRITE_WITH_IMM from the peer.
    pub fn post_recv(&self, recv: RecvRequest) -> Result<()> {
        let state = self.state();
        if state == QpState::Disconnected {
            return Err(FabricError::InvalidQpState {
                operation: "post_recv",
                state: state.name(),
            });
        }
        if self.inner.srq.read().is_some() {
            return Err(FabricError::UnsupportedOperation(
                "post_recv on an SRQ-attached queue pair (post to the SRQ instead)",
            ));
        }
        let profile = self.profile();
        validate_sge(&recv.local)?;
        let mut queue = self.inner.recv_queue.lock();
        if queue.len() >= profile.max_recv_queue_depth {
            return Err(FabricError::DeviceLimitExceeded {
                limit: "receive queue depth",
            });
        }
        queue.push_back(recv);
        drop(queue);
        self.inner.clock.advance(profile.post_recv_overhead);
        Ok(())
    }

    /// Number of receive work requests currently posted.
    pub fn posted_receives(&self) -> usize {
        self.inner.recv_queue.lock().len()
    }

    /// Post a send-queue work request (write, write-with-immediate, send,
    /// read or atomic). `signaled` controls whether a send-side completion is
    /// generated.
    ///
    /// The call is non-blocking: the caller's virtual clock only advances by
    /// the posting overhead, while transfer timing is reflected in the
    /// completion timestamps.
    pub fn post_send(&self, wr_id: u64, request: SendRequest, signaled: bool) -> Result<()> {
        self.post_send_inner(wr_id, request, signaled, false)
    }

    /// Post a chain of send-queue work requests behind a single doorbell.
    ///
    /// Real verbs accept a linked list of WQEs per `ibv_post_send`; only the
    /// first pays the doorbell MMIO, the rest pay the (cheaper) descriptor
    /// build. Requests execute in order; on the first failure the error is
    /// returned and the remaining requests are not posted (the earlier ones
    /// already executed, as on real hardware). Returns the number posted.
    pub fn post_send_batch(&self, requests: Vec<(u64, SendRequest, bool)>) -> Result<usize> {
        let mut posted = 0;
        for (wr_id, request, signaled) in requests {
            self.post_send_chained(wr_id, request, signaled, posted > 0)?;
            posted += 1;
        }
        Ok(posted)
    }

    /// Post one send-queue work request as an explicit link of a
    /// caller-managed WQE chain: `chained = false` opens a chain (full
    /// doorbell issue cost), `chained = true` appends to one (descriptor
    /// build only). This is the primitive [`QueuePair::post_send_batch`] is
    /// built on, exposed so a caller coordinating a burst across several
    /// queue pairs on the same NIC (one WQE per peer, all descriptors built
    /// before the doorbells are rung, as the mlx5 driver does for post
    /// bursts) can bill the chain across connections.
    pub fn post_send_chained(
        &self,
        wr_id: u64,
        request: SendRequest,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        self.post_send_inner(wr_id, request, signaled, chained)
    }

    /// Post a write(-with-immediate) whose payload is *inlined* into the
    /// WQE: the NIC copies the bytes at post time, so no registered local
    /// buffer (and no DMA fetch) is involved — the zero-copy fast path rFaaS
    /// uses for small invocations. Fails with [`FabricError::InlineTooLarge`]
    /// beyond the device's `max_inline_data`.
    pub fn post_write_inline(
        &self,
        wr_id: u64,
        data: &[u8],
        remote: &RemoteMemoryHandle,
        imm: Option<u32>,
        signaled: bool,
    ) -> Result<()> {
        let max = self.profile().max_inline_data;
        if data.len() > max {
            return Err(FabricError::InlineTooLarge {
                len: data.len(),
                max,
            });
        }
        let peer = self.connected_peer("post_send")?;
        self.inner.ops_posted.fetch_add(1, Ordering::Relaxed);
        self.write_remote_bytes(wr_id, data, remote, imm, &peer, signaled, false)
    }

    fn post_send_inner(
        &self,
        wr_id: u64,
        request: SendRequest,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let peer = self.connected_peer("post_send")?;
        validate_sge(request.local())?;
        self.inner.ops_posted.fetch_add(1, Ordering::Relaxed);

        match &request {
            SendRequest::Send { local } => {
                self.execute_send(wr_id, local, &peer, signaled, chained)
            }
            SendRequest::Write { local, remote } => {
                self.execute_write(wr_id, local, remote, None, &peer, signaled, chained)
            }
            SendRequest::WriteWithImm { local, remote, imm } => {
                self.execute_write(wr_id, local, remote, Some(*imm), &peer, signaled, chained)
            }
            SendRequest::Read { local, remote } => {
                self.execute_read(wr_id, local, remote, &peer, signaled, chained)
            }
            SendRequest::AtomicFetchAdd { local, remote, add } => self.execute_atomic(
                wr_id,
                local,
                remote,
                AtomicOp::FetchAdd(*add),
                &peer,
                signaled,
                chained,
            ),
            SendRequest::AtomicCompareSwap {
                local,
                remote,
                compare,
                swap,
            } => self.execute_atomic(
                wr_id,
                local,
                remote,
                AtomicOp::CompareSwap {
                    compare: *compare,
                    swap: *swap,
                },
                &peer,
                signaled,
                chained,
            ),
        }
    }

    /// Consume the receive buffer an incoming message lands in: from the
    /// peer's SRQ when one is attached (honouring its credit), otherwise
    /// from its private receive queue — FIFO either way.
    ///
    /// An SRQ that is momentarily *empty* — every posted buffer in flight
    /// to the dispatcher — is not a receiver failure: the NIC answers with
    /// an RNR NAK and the sender retransmits, so this path spins until the
    /// consumer reposts (bounded by a generous wall-clock window). Only a
    /// genuine per-QP credit overrun, the flow-control contract that stops
    /// one tenant starving the shared queue, fails the post immediately.
    /// Retries never touch the virtual clock, so timestamps stay
    /// deterministic.
    fn consume_peer_recv(peer: &Arc<QpInner>) -> Result<RecvRequest> {
        const RNR_RETRY_WINDOW: std::time::Duration = std::time::Duration::from_secs(5);
        let srq = peer.srq.read().clone();
        match srq {
            Some(srq) => {
                let mut deadline = None;
                loop {
                    match srq.pop_for(peer.qp_num) {
                        Err(FabricError::ReceiverNotReady) if !srq.over_credit(peer.qp_num) => {
                            // simlint::allow(wall_clock, reason = "RNR retry window bounds the host-side spin; the retry itself is billed in virtual time")
                            let now = std::time::Instant::now();
                            match deadline {
                                None => deadline = Some(now + RNR_RETRY_WINDOW),
                                Some(d) if now >= d => return Err(FabricError::ReceiverNotReady),
                                Some(_) => {}
                            }
                            std::thread::yield_now();
                        }
                        other => return other,
                    }
                }
            }
            None => peer
                .recv_queue
                .lock()
                .pop_front()
                .ok_or(FabricError::ReceiverNotReady),
        }
    }

    fn connected_peer(&self, operation: &'static str) -> Result<Arc<QpInner>> {
        let state = self.state();
        if state != QpState::Connected {
            return Err(FabricError::InvalidQpState {
                operation,
                state: state.name(),
            });
        }
        let peer = self
            .inner
            .peer
            .read()
            .clone()
            .ok_or(FabricError::NotConnected)?;
        if *peer.state.read() != QpState::Connected {
            return Err(FabricError::ConnectionLost);
        }
        Ok(peer)
    }

    fn profile(&self) -> NicProfile {
        self.inner.fabric.profile().clone()
    }

    fn issue(&self, payload: usize, chained: bool) -> SimTime {
        let profile = self.profile();
        let issue = if chained {
            profile.issue_cost_chained(payload)
        } else {
            profile.issue_cost(payload)
        };
        let cost = issue + self.inner.function.message_overhead(&profile);
        self.inner.clock.advance(cost)
    }

    fn execute_send(
        &self,
        wr_id: u64,
        local: &Sge,
        peer: &Arc<QpInner>,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let profile = self.profile();
        let recv = Self::consume_peer_recv(peer)?;
        if recv.local.len < local.len {
            // The message is lost and the receive is consumed, as with a real
            // RC transport length error; report it to the initiator.
            return Err(FabricError::ReceiveBufferTooSmall {
                message_len: local.len,
                buffer_len: recv.local.len,
            });
        }
        let data = local.region.read(local.offset, local.len)?;
        recv.local.region.write(recv.local.offset, &data)?;

        let ready = self.issue(local.len, chained);
        let timing = self
            .inner
            .fabric
            .transfer(&self.inner.node, &peer.node, local.len, ready);
        peer.recv_cq.push(WorkCompletion {
            wr_id: recv.wr_id,
            opcode: OpCode::Recv,
            status: CompletionStatus::Success,
            byte_len: local.len,
            imm: None,
            timestamp: timing.arrive,
            qp_num: peer.qp_num,
        });
        if signaled {
            self.inner.send_cq.push(WorkCompletion {
                wr_id,
                opcode: OpCode::Send,
                status: CompletionStatus::Success,
                byte_len: local.len,
                imm: None,
                timestamp: timing.depart + profile.local_completion,
                qp_num: self.inner.qp_num,
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_write(
        &self,
        wr_id: u64,
        local: &Sge,
        remote: &RemoteMemoryHandle,
        imm: Option<u32>,
        peer: &Arc<QpInner>,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let data = local.region.read(local.offset, local.len)?;
        self.write_remote_bytes(wr_id, &data, remote, imm, peer, signaled, chained)
    }

    /// Shared body of buffered and inline writes: `data` already left the
    /// initiator's memory (gathered from the SGE or copied into the WQE).
    #[allow(clippy::too_many_arguments)]
    fn write_remote_bytes(
        &self,
        wr_id: u64,
        data: &[u8],
        remote: &RemoteMemoryHandle,
        imm: Option<u32>,
        peer: &Arc<QpInner>,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let profile = self.profile();
        let len = data.len();
        let target = peer.pd.lookup(remote.rkey)?;
        if !target.access().remote_write {
            return Err(FabricError::RemoteAccessDenied {
                required: "REMOTE_WRITE",
            });
        }
        if remote.offset + len > target.len() {
            return Err(FabricError::RemoteAccessOutOfBounds {
                offset: remote.offset,
                len,
                region_len: target.len(),
            });
        }
        // Write-with-immediate additionally consumes a posted receive so the
        // remote CPU learns about the delivery.
        let consumed_recv = if imm.is_some() {
            Some(Self::consume_peer_recv(peer)?)
        } else {
            None
        };

        target.write(remote.offset, data)?;

        let ready = self.issue(len, chained);
        let timing = self
            .inner
            .fabric
            .transfer(&self.inner.node, &peer.node, len, ready);
        if let Some(recv) = consumed_recv {
            peer.recv_cq.push(WorkCompletion {
                wr_id: recv.wr_id,
                opcode: OpCode::WriteWithImm,
                status: CompletionStatus::Success,
                byte_len: len,
                imm,
                timestamp: timing.arrive,
                qp_num: peer.qp_num,
            });
        }
        if signaled {
            self.inner.send_cq.push(WorkCompletion {
                wr_id,
                opcode: if imm.is_some() {
                    OpCode::WriteWithImm
                } else {
                    OpCode::Write
                },
                status: CompletionStatus::Success,
                byte_len: len,
                imm: None,
                timestamp: timing.depart + profile.local_completion,
                qp_num: self.inner.qp_num,
            });
        }
        Ok(())
    }

    fn execute_read(
        &self,
        wr_id: u64,
        local: &Sge,
        remote: &RemoteMemoryHandle,
        peer: &Arc<QpInner>,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let profile = self.profile();
        let source = peer.pd.lookup(remote.rkey)?;
        if !source.access().remote_read {
            return Err(FabricError::RemoteAccessDenied {
                required: "REMOTE_READ",
            });
        }
        if remote.offset + local.len > source.len() {
            return Err(FabricError::RemoteAccessOutOfBounds {
                offset: remote.offset,
                len: local.len,
                region_len: source.len(),
            });
        }
        let data = source.read(remote.offset, local.len)?;
        local.region.write(local.offset, &data)?;

        // Request travels to the target, the response streams the data back.
        let ready = self.issue(0, chained);
        let request_arrival = ready + profile.one_way_latency;
        let timing =
            self.inner
                .fabric
                .transfer(&peer.node, &self.inner.node, local.len, request_arrival);
        if signaled {
            self.inner.send_cq.push(WorkCompletion {
                wr_id,
                opcode: OpCode::Read,
                status: CompletionStatus::Success,
                byte_len: local.len,
                imm: None,
                timestamp: timing.arrive,
                qp_num: self.inner.qp_num,
            });
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_atomic(
        &self,
        wr_id: u64,
        local: &Sge,
        remote: &RemoteMemoryHandle,
        op: AtomicOp,
        peer: &Arc<QpInner>,
        signaled: bool,
        chained: bool,
    ) -> Result<()> {
        let profile = self.profile();
        let target = peer.pd.lookup(remote.rkey)?;
        if !target.access().remote_atomic {
            return Err(FabricError::RemoteAccessDenied {
                required: "REMOTE_ATOMIC",
            });
        }
        if !remote.offset.is_multiple_of(8) || remote.offset + 8 > target.len() {
            return Err(FabricError::InvalidAtomicTarget {
                offset: remote.offset,
            });
        }
        if local.len < 8 {
            return Err(FabricError::LocalAccessOutOfBounds {
                offset: local.offset,
                len: 8,
                region_len: local.len,
            });
        }
        // The read-modify-write is atomic because the region lock is held for
        // the whole update.
        let original = target.with_bytes_mut(|bytes| {
            let slot = &mut bytes[remote.offset..remote.offset + 8];
            let old = u64::from_le_bytes(slot.try_into().expect("8-byte slot"));
            let new = match op {
                AtomicOp::FetchAdd(add) => old.wrapping_add(add),
                AtomicOp::CompareSwap { compare, swap } => {
                    if old == compare {
                        swap
                    } else {
                        old
                    }
                }
            };
            slot.copy_from_slice(&new.to_le_bytes());
            old
        });
        local.region.write(local.offset, &original.to_le_bytes())?;

        let ready = self.issue(8, chained);
        let completion_time =
            ready + profile.one_way_latency + profile.atomic_execution + profile.one_way_latency;
        if signaled {
            self.inner.send_cq.push(WorkCompletion {
                wr_id,
                opcode: match op {
                    AtomicOp::FetchAdd(_) => OpCode::AtomicFetchAdd,
                    AtomicOp::CompareSwap { .. } => OpCode::AtomicCompareSwap,
                },
                status: CompletionStatus::Success,
                byte_len: 8,
                imm: None,
                timestamp: completion_time,
                qp_num: self.inner.qp_num,
            });
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
enum AtomicOp {
    FetchAdd(u64),
    CompareSwap { compare: u64, swap: u64 },
}

fn validate_sge(sge: &Sge) -> Result<()> {
    let region_len = sge.region.len();
    if sge
        .offset
        .checked_add(sge.len)
        .map(|end| end <= region_len)
        .unwrap_or(false)
    {
        Ok(())
    } else {
        Err(FabricError::LocalAccessOutOfBounds {
            offset: sge.offset,
            len: sge.len,
            region_len,
        })
    }
}

/// Helper extension: build a remote handle for a region registered in this
/// QP's own protection domain (what rFaaS sends to the peer in handshakes).
pub fn advertise(region: &MemoryRegion) -> RemoteMemoryHandle {
    region.remote_handle()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::AccessFlags;

    /// Two directly connected endpoints on different nodes.
    fn connected_pair() -> (QueuePair, QueuePair, Arc<Fabric>) {
        let fabric = Fabric::with_defaults();
        let n1 = fabric.add_node("client");
        let n2 = fabric.add_node("server");
        let e1 = Endpoint::new(&fabric, &n1);
        let e2 = Endpoint::new(&fabric, &n2);
        let a = QueuePair::new(&e1);
        let b = QueuePair::new(&e2);
        QueuePair::connect_pair(&a, &b).unwrap();
        (a, b, fabric)
    }

    #[test]
    fn write_moves_bytes_into_remote_region() {
        let (client, server, _f) = connected_pair();
        let src = client
            .pd()
            .register_from(vec![5u8; 64], AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(64, AccessFlags::REMOTE_WRITE);
        client
            .post_send(
                1,
                SendRequest::Write {
                    local: Sge::whole(&src),
                    remote: dst.remote_handle(),
                },
                true,
            )
            .unwrap();
        assert_eq!(dst.read_all(), vec![5u8; 64]);
        let wc = client.send_cq().poll_one().unwrap();
        assert!(wc.is_success());
        assert_eq!(wc.opcode, OpCode::Write);
        assert_eq!(wc.byte_len, 64);
    }

    #[test]
    fn write_with_imm_delivers_immediate_and_consumes_recv() {
        let (client, server, _f) = connected_pair();
        let src = client
            .pd()
            .register_from(vec![9u8; 32], AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(32, AccessFlags::REMOTE_WRITE);
        let scratch = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: 77,
                local: Sge::whole(&scratch),
            })
            .unwrap();
        client
            .post_send(
                2,
                SendRequest::WriteWithImm {
                    local: Sge::whole(&src),
                    remote: dst.remote_handle(),
                    imm: 0xABCD,
                },
                false,
            )
            .unwrap();
        let wc = server.recv_cq().poll_one().unwrap();
        assert_eq!(wc.wr_id, 77);
        assert_eq!(wc.imm, Some(0xABCD));
        assert_eq!(wc.opcode, OpCode::WriteWithImm);
        assert_eq!(dst.read_all(), vec![9u8; 32]);
        assert_eq!(server.posted_receives(), 0);
        // Unsignaled send generates no local completion.
        assert_eq!(client.send_cq().pending(), 0);
    }

    #[test]
    fn write_with_imm_without_posted_recv_is_rejected() {
        let (client, server, _f) = connected_pair();
        let src = client.pd().register(16, AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(16, AccessFlags::REMOTE_WRITE);
        let err = client
            .post_send(
                3,
                SendRequest::WriteWithImm {
                    local: Sge::whole(&src),
                    remote: dst.remote_handle(),
                    imm: 1,
                },
                true,
            )
            .unwrap_err();
        assert_eq!(err, FabricError::ReceiverNotReady);
    }

    #[test]
    fn send_recv_round_trip() {
        let (client, server, _f) = connected_pair();
        let src = client
            .pd()
            .register_from(b"hello".to_vec(), AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(16, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: 10,
                local: Sge::whole(&dst),
            })
            .unwrap();
        client
            .post_send(
                4,
                SendRequest::Send {
                    local: Sge::whole(&src),
                },
                true,
            )
            .unwrap();
        let wc = server.recv_cq().poll_one().unwrap();
        assert_eq!(wc.opcode, OpCode::Recv);
        assert_eq!(wc.byte_len, 5);
        assert_eq!(&dst.read(0, 5).unwrap(), b"hello");
    }

    #[test]
    fn send_to_small_buffer_fails() {
        let (client, server, _f) = connected_pair();
        let src = client.pd().register(64, AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: 1,
                local: Sge::whole(&dst),
            })
            .unwrap();
        let err = client
            .post_send(
                5,
                SendRequest::Send {
                    local: Sge::whole(&src),
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::ReceiveBufferTooSmall { .. }));
    }

    #[test]
    fn read_fetches_remote_bytes() {
        let (client, server, _f) = connected_pair();
        let remote = server
            .pd()
            .register_from(vec![1, 2, 3, 4, 5, 6, 7, 8], AccessFlags::REMOTE_ALL);
        let local = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        client
            .post_send(
                6,
                SendRequest::Read {
                    local: Sge::whole(&local),
                    remote: remote.remote_handle(),
                },
                true,
            )
            .unwrap();
        let wc = client.send_cq().poll_one().unwrap();
        assert_eq!(wc.opcode, OpCode::Read);
        assert_eq!(local.read_all(), vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn access_permissions_are_enforced() {
        let (client, server, _f) = connected_pair();
        let local = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        let no_write = server.pd().register(
            8,
            AccessFlags {
                remote_write: false,
                ..AccessFlags::REMOTE_ALL
            },
        );
        let err = client
            .post_send(
                7,
                SendRequest::Write {
                    local: Sge::whole(&local),
                    remote: no_write.remote_handle(),
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::RemoteAccessDenied { .. }));

        let no_read = server.pd().register(8, AccessFlags::REMOTE_WRITE);
        let err = client
            .post_send(
                8,
                SendRequest::Read {
                    local: Sge::whole(&local),
                    remote: no_read.remote_handle(),
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::RemoteAccessDenied { .. }));

        let no_atomic = server.pd().register(8, AccessFlags::REMOTE_WRITE);
        let err = client
            .post_send(
                9,
                SendRequest::AtomicFetchAdd {
                    local: Sge::whole(&local),
                    remote: no_atomic.remote_handle(),
                    add: 1,
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::RemoteAccessDenied { .. }));
    }

    #[test]
    fn remote_out_of_bounds_is_rejected() {
        let (client, server, _f) = connected_pair();
        let local = client.pd().register(64, AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(16, AccessFlags::REMOTE_ALL);
        let err = client
            .post_send(
                10,
                SendRequest::Write {
                    local: Sge::whole(&local),
                    remote: dst.remote_handle(),
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::RemoteAccessOutOfBounds { .. }));
    }

    #[test]
    fn unknown_rkey_is_rejected() {
        let (client, _server, _f) = connected_pair();
        let local = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        let err = client
            .post_send(
                11,
                SendRequest::Write {
                    local: Sge::whole(&local),
                    remote: RemoteMemoryHandle {
                        rkey: 0xffff_ffff,
                        offset: 0,
                        len: 8,
                    },
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidRemoteKey(_)));
    }

    #[test]
    fn atomic_fetch_add_accumulates() {
        let (client, server, _f) = connected_pair();
        let counter = server.pd().register(8, AccessFlags::REMOTE_ALL);
        let old_buf = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        for i in 0..5u64 {
            client
                .post_send(
                    100 + i,
                    SendRequest::AtomicFetchAdd {
                        local: Sge::whole(&old_buf),
                        remote: counter.remote_handle(),
                        add: 10,
                    },
                    true,
                )
                .unwrap();
            let wc = client.send_cq().poll_one().unwrap();
            assert_eq!(wc.opcode, OpCode::AtomicFetchAdd);
            assert_eq!(old_buf.read_u64(0).unwrap(), i * 10);
        }
        assert_eq!(counter.read_u64(0).unwrap(), 50);
    }

    #[test]
    fn atomic_compare_swap_behaviour() {
        let (client, server, _f) = connected_pair();
        let word = server.pd().register(8, AccessFlags::REMOTE_ALL);
        word.write_u64(0, 42).unwrap();
        let old_buf = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        // Successful CAS.
        client
            .post_send(
                1,
                SendRequest::AtomicCompareSwap {
                    local: Sge::whole(&old_buf),
                    remote: word.remote_handle(),
                    compare: 42,
                    swap: 99,
                },
                true,
            )
            .unwrap();
        assert_eq!(old_buf.read_u64(0).unwrap(), 42);
        assert_eq!(word.read_u64(0).unwrap(), 99);
        // Failed CAS leaves the value untouched and returns the current one.
        client
            .post_send(
                2,
                SendRequest::AtomicCompareSwap {
                    local: Sge::whole(&old_buf),
                    remote: word.remote_handle(),
                    compare: 42,
                    swap: 7,
                },
                true,
            )
            .unwrap();
        assert_eq!(old_buf.read_u64(0).unwrap(), 99);
        assert_eq!(word.read_u64(0).unwrap(), 99);
    }

    #[test]
    fn atomic_on_misaligned_offset_is_rejected() {
        let (client, server, _f) = connected_pair();
        let word = server.pd().register(16, AccessFlags::REMOTE_ALL);
        let old_buf = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        let err = client
            .post_send(
                1,
                SendRequest::AtomicFetchAdd {
                    local: Sge::whole(&old_buf),
                    remote: word.remote_handle_range(4, 8).unwrap(),
                    add: 1,
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidAtomicTarget { .. }));
    }

    #[test]
    fn post_send_requires_connection() {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("solo");
        let qp = QueuePair::new(&Endpoint::new(&fabric, &node));
        let mr = qp.pd().register(8, AccessFlags::LOCAL_ONLY);
        let err = qp
            .post_send(
                1,
                SendRequest::Send {
                    local: Sge::whole(&mr),
                },
                true,
            )
            .unwrap_err();
        assert!(matches!(err, FabricError::InvalidQpState { .. }));
    }

    #[test]
    fn disconnect_propagates_to_peer() {
        let (client, server, _f) = connected_pair();
        client.disconnect();
        assert_eq!(client.state(), QpState::Disconnected);
        assert_eq!(server.state(), QpState::Disconnected);
        assert!(!server.is_connected());
        let mr = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        assert!(server
            .post_send(
                1,
                SendRequest::Send {
                    local: Sge::whole(&mr)
                },
                true
            )
            .is_err());
    }

    #[test]
    fn posting_clock_cost_is_small_and_independent_of_payload() {
        // RDMA posts are asynchronous: a 1 MiB write must not block the
        // caller's virtual clock for the serialization time.
        let (client, server, _f) = connected_pair();
        let src = client.pd().register(1024 * 1024, AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(1024 * 1024, AccessFlags::REMOTE_WRITE);
        let before = client.clock().now();
        client
            .post_send(
                1,
                SendRequest::Write {
                    local: Sge::whole(&src),
                    remote: dst.remote_handle(),
                },
                false,
            )
            .unwrap();
        let elapsed = client.clock().now().saturating_since(before);
        assert!(elapsed.as_micros_f64() < 1.0, "posting took {elapsed}");
    }

    #[test]
    fn receive_queue_depth_is_bounded() {
        let (_client, server, _f) = connected_pair();
        let mr = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        let depth = Fabric::with_defaults().profile().max_recv_queue_depth;
        for i in 0..depth {
            server
                .post_recv(RecvRequest {
                    wr_id: i as u64,
                    local: Sge::whole(&mr),
                })
                .unwrap();
        }
        let err = server
            .post_recv(RecvRequest {
                wr_id: 0,
                local: Sge::whole(&mr),
            })
            .unwrap_err();
        assert!(matches!(err, FabricError::DeviceLimitExceeded { .. }));
    }

    #[test]
    fn inline_write_moves_bytes_without_a_local_region() {
        let (client, server, _f) = connected_pair();
        let dst = server.pd().register(64, AccessFlags::REMOTE_WRITE);
        let scratch = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: 5,
                local: Sge::whole(&scratch),
            })
            .unwrap();
        client
            .post_write_inline(1, b"inline!", &dst.remote_handle(), Some(0x42), false)
            .unwrap();
        let wc = server.recv_cq().poll_one().unwrap();
        assert_eq!(wc.imm, Some(0x42));
        assert_eq!(wc.byte_len, 7);
        assert_eq!(&dst.read(0, 7).unwrap(), b"inline!");
    }

    #[test]
    fn inline_write_respects_the_device_capacity() {
        let (client, server, fabric) = connected_pair();
        let max = fabric.profile().max_inline_data;
        let dst = server.pd().register(max + 64, AccessFlags::REMOTE_WRITE);
        let err = client
            .post_write_inline(1, &vec![0u8; max + 1], &dst.remote_handle(), None, false)
            .unwrap_err();
        assert!(matches!(err, FabricError::InlineTooLarge { .. }));
        // Exactly at the limit is fine (plain write, no immediate → no recv).
        client
            .post_write_inline(2, &vec![7u8; max], &dst.remote_handle(), None, false)
            .unwrap();
        assert_eq!(dst.read(0, max).unwrap(), vec![7u8; max]);
    }

    #[test]
    fn batched_posts_share_one_doorbell() {
        let (client, server, fabric) = connected_pair();
        let profile = fabric.profile().clone();
        let src = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        let dst = server.pd().register(64, AccessFlags::REMOTE_ALL);
        let n = 4;
        let batch: Vec<(u64, SendRequest, bool)> = (0..n)
            .map(|i| {
                (
                    i,
                    SendRequest::Write {
                        local: Sge::whole(&src),
                        remote: dst.remote_handle_range(8 * i as usize, 8).unwrap(),
                    },
                    false,
                )
            })
            .collect();
        let before = client.clock().now();
        assert_eq!(client.post_send_batch(batch).unwrap(), n as usize);
        let elapsed = client.clock().now().saturating_since(before);
        let expected = profile.issue_cost(8) + profile.issue_cost_chained(8).saturating_mul(n - 1);
        assert_eq!(elapsed, expected);
        assert_eq!(client.ops_posted(), n);

        // The same posts issued individually cost strictly more clock time.
        let before = client.clock().now();
        for i in 0..n {
            client
                .post_send(
                    i,
                    SendRequest::Write {
                        local: Sge::whole(&src),
                        remote: dst.remote_handle_range(8 * i as usize, 8).unwrap(),
                    },
                    false,
                )
                .unwrap();
        }
        let unbatched = client.clock().now().saturating_since(before);
        assert!(unbatched > elapsed, "{unbatched} <= {elapsed}");
    }

    #[test]
    fn batch_stops_at_the_first_failure() {
        let (client, server, _f) = connected_pair();
        let src = client.pd().register(8, AccessFlags::LOCAL_ONLY);
        let good = server.pd().register(8, AccessFlags::REMOTE_WRITE);
        let sealed = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        let err = client
            .post_send_batch(vec![
                (
                    1,
                    SendRequest::Write {
                        local: Sge::whole(&src),
                        remote: good.remote_handle(),
                    },
                    false,
                ),
                (
                    2,
                    SendRequest::Write {
                        local: Sge::whole(&src),
                        remote: sealed.remote_handle(),
                    },
                    false,
                ),
                (
                    3,
                    SendRequest::Write {
                        local: Sge::whole(&src),
                        remote: good.remote_handle(),
                    },
                    false,
                ),
            ])
            .unwrap_err();
        assert!(matches!(err, FabricError::RemoteAccessDenied { .. }));
        // The first write executed, the third never ran.
        assert_eq!(client.ops_posted(), 2); // first + failing second
    }

    #[test]
    fn qp_numbers_are_unique() {
        let (a, b, _f) = connected_pair();
        assert_ne!(a.qp_num(), b.qp_num());
        assert!(a.ops_posted() == 0);
    }
}
