//! Completion queues.
//!
//! A completion queue (CQ) collects work completions from one or more queue
//! pairs. Consumers can either *busy poll* it — the mechanism behind rFaaS
//! *hot* invocations — or block until a completion arrives — the mechanism
//! behind *warm* invocations. Busy polling costs CPU but observes the
//! completion almost immediately; blocking waits release the CPU but pay the
//! interrupt/wake-up latency and contend on the node's shared notification
//! channel.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use sim_core::{SimDuration, SimTime, VirtualClock};

use crate::device::{DeviceFunction, NicProfile};
use crate::fabric::FabricNode;
use crate::verbs::WorkCompletion;

/// How a consumer observes completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Spin on the CQ; lowest latency, occupies the CPU (hot invocations).
    BusyPoll,
    /// Sleep until the completion event fires; frees the CPU but pays the
    /// wake-up cost (warm invocations).
    Blocking,
}

#[derive(Debug, Default)]
struct CqState {
    completions: VecDeque<WorkCompletion>,
    disconnected: bool,
}

#[derive(Debug)]
struct CqInner {
    state: Mutex<CqState>,
    available: Condvar,
    clock: Arc<VirtualClock>,
    node: Arc<FabricNode>,
    profile: NicProfile,
    function: DeviceFunction,
}

/// A completion queue bound to one consumer actor (its virtual clock) and one
/// fabric node (for notification contention accounting).
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Create a CQ for a consumer running on `node` with virtual clock
    /// `clock`, attached through the given device function.
    pub fn new(
        clock: Arc<VirtualClock>,
        node: Arc<FabricNode>,
        profile: NicProfile,
        function: DeviceFunction,
    ) -> CompletionQueue {
        CompletionQueue {
            inner: Arc::new(CqInner {
                state: Mutex::new(CqState::default()),
                available: Condvar::new(),
                clock,
                node,
                profile,
                function,
            }),
        }
    }

    /// The virtual clock of the CQ's consumer.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.inner.clock
    }

    /// Deliver a completion (called by the fabric / peer queue pairs).
    pub(crate) fn push(&self, completion: WorkCompletion) {
        let mut state = self.inner.state.lock();
        state.completions.push_back(completion);
        drop(state);
        self.inner.available.notify_all();
    }

    /// Mark the CQ as disconnected so blocked waiters wake up with `None`.
    pub(crate) fn disconnect(&self) {
        self.inner.state.lock().disconnected = true;
        self.inner.available.notify_all();
    }

    /// Number of completions currently queued.
    pub fn pending(&self) -> usize {
        self.inner.state.lock().completions.len()
    }

    /// Non-blocking poll for up to `max` completions (busy-polling pickup).
    ///
    /// For each returned completion the consumer clock is synchronised to the
    /// completion's arrival time plus the polling pickup cost. Empty polls do
    /// not advance virtual time: an idle spinning thread does no useful
    /// virtual work.
    pub fn poll(&self, max: usize) -> Vec<WorkCompletion> {
        let mut state = self.inner.state.lock();
        let n = state.completions.len().min(max);
        let drained: Vec<WorkCompletion> = state.completions.drain(..n).collect();
        drop(state);
        for wc in &drained {
            let pickup = self.inner.profile.completion_pickup
                + self.inner.function.message_overhead(&self.inner.profile);
            self.inner.clock.advance_to_then(wc.timestamp, pickup);
        }
        drained
    }

    /// Poll a single completion without blocking.
    pub fn poll_one(&self) -> Option<WorkCompletion> {
        self.poll(1).into_iter().next()
    }

    /// Busy-poll until a completion arrives (hot path). Returns `None` if the
    /// CQ is disconnected while waiting.
    pub fn busy_wait(&self) -> Option<WorkCompletion> {
        loop {
            if let Some(wc) = self.poll_one() {
                return Some(wc);
            }
            if self.inner.state.lock().disconnected {
                return None;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Block until a completion arrives (warm path). Charges the blocking
    /// wake-up latency and the per-node notification serialisation. Returns
    /// `None` if the CQ is disconnected while waiting.
    pub fn blocking_wait(&self) -> Option<WorkCompletion> {
        let mut state = self.inner.state.lock();
        loop {
            if let Some(wc) = state.completions.pop_front() {
                drop(state);
                return Some(self.charge_blocking_pickup(wc));
            }
            if state.disconnected {
                return None;
            }
            self.inner.available.wait(&mut state);
        }
    }

    /// Block until a completion arrives or the real-time timeout expires.
    /// The timeout is wall-clock (it bounds test execution time); the virtual
    /// cost model is identical to [`CompletionQueue::blocking_wait`].
    pub fn blocking_wait_timeout(&self, timeout: Duration) -> Option<WorkCompletion> {
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if let Some(wc) = state.completions.pop_front() {
                drop(state);
                return Some(self.charge_blocking_pickup(wc));
            }
            if state.disconnected {
                return None;
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .inner
                .available
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.completions.pop_front().map(|wc| {
                    drop(state);
                    self.charge_blocking_pickup(wc)
                });
            }
        }
    }

    /// Wait with the requested mode.
    pub fn wait(&self, mode: WaitMode) -> Option<WorkCompletion> {
        match mode {
            WaitMode::BusyPoll => self.busy_wait(),
            WaitMode::Blocking => self.blocking_wait(),
        }
    }

    fn charge_blocking_pickup(&self, wc: WorkCompletion) -> WorkCompletion {
        // Serialise the notification through the node's shared event channel:
        // concurrent blocking waiters on one node queue behind each other.
        let dispatch = self.inner.profile.notification_dispatch;
        let visible: SimTime = self
            .inner
            .node
            .serialize_notification(wc.timestamp, dispatch);
        let wakeup = self.inner.profile.blocking_wakeup
            + self.inner.function.blocking_extra(&self.inner.profile)
            + self.inner.profile.completion_pickup;
        self.inner.clock.advance_to_then(visible, wakeup);
        wc
    }

    /// The blocking wake-up penalty of this CQ's device function, exposed for
    /// cost-model introspection in benchmarks.
    pub fn blocking_penalty(&self) -> SimDuration {
        self.inner.profile.blocking_wakeup + self.inner.function.blocking_extra(&self.inner.profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::verbs::{CompletionStatus, OpCode};
    use std::thread;

    fn make_cq(mode_function: DeviceFunction) -> (CompletionQueue, Arc<VirtualClock>) {
        let fabric = Fabric::new(NicProfile::default());
        let node = fabric.add_node("n0");
        let clock = VirtualClock::shared();
        let cq = CompletionQueue::new(
            Arc::clone(&clock),
            node,
            NicProfile::default(),
            mode_function,
        );
        (cq, clock)
    }

    fn completion_at(ts_us: u64) -> WorkCompletion {
        WorkCompletion {
            wr_id: 1,
            opcode: OpCode::Recv,
            status: CompletionStatus::Success,
            byte_len: 16,
            imm: Some(7),
            timestamp: SimTime::from_micros(ts_us),
            qp_num: 3,
        }
    }

    #[test]
    fn empty_poll_does_not_advance_clock() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        assert!(cq.poll(4).is_empty());
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn poll_synchronises_clock_to_arrival() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        cq.push(completion_at(10));
        let wcs = cq.poll(4);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].imm, Some(7));
        // 10 us arrival + 65 ns pickup.
        assert_eq!(clock.now().as_nanos(), 10_065);
    }

    #[test]
    fn blocking_wait_charges_wakeup_latency() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        cq.push(completion_at(10));
        let wc = cq.blocking_wait().unwrap();
        assert!(wc.is_success());
        // arrival 10us + dispatch 550ns + wakeup 3800ns + pickup 65ns
        assert_eq!(clock.now().as_nanos(), 10_000 + 550 + 3_800 + 65);
    }

    #[test]
    fn virtual_function_blocking_is_slower() {
        let (phys, phys_clock) = make_cq(DeviceFunction::Physical);
        let (virt, virt_clock) = make_cq(DeviceFunction::Virtual);
        phys.push(completion_at(1));
        virt.push(completion_at(1));
        phys.blocking_wait().unwrap();
        virt.blocking_wait().unwrap();
        assert!(virt_clock.now() > phys_clock.now());
        let delta = virt_clock.now().as_nanos() - phys_clock.now().as_nanos();
        // 600 ns vf blocking extra + 25 ns message overhead tolerance window.
        assert!((600..=700).contains(&delta), "delta {delta}");
    }

    #[test]
    fn blocking_wait_wakes_on_push_from_other_thread() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.blocking_wait());
        thread::sleep(Duration::from_millis(20));
        cq.push(completion_at(5));
        let wc = handle.join().unwrap().unwrap();
        assert_eq!(wc.wr_id, 1);
    }

    #[test]
    fn busy_wait_picks_up_pushed_completion() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.busy_wait());
        thread::sleep(Duration::from_millis(10));
        cq.push(completion_at(2));
        assert!(handle.join().unwrap().is_some());
    }

    #[test]
    fn disconnect_wakes_blocked_waiters_with_none() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.blocking_wait());
        thread::sleep(Duration::from_millis(10));
        cq.disconnect();
        assert!(handle.join().unwrap().is_none());
        // Busy wait also observes the disconnect.
        assert!(cq.busy_wait().is_none());
    }

    #[test]
    fn blocking_wait_timeout_returns_none_when_idle() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        assert!(cq
            .blocking_wait_timeout(Duration::from_millis(10))
            .is_none());
        cq.push(completion_at(1));
        assert!(cq
            .blocking_wait_timeout(Duration::from_millis(10))
            .is_some());
    }

    #[test]
    fn notification_contention_serialises_waiters() {
        // Two completions arriving at the same instant on the same node must
        // be observed at staggered virtual times by blocking waiters.
        let fabric = Fabric::new(NicProfile::default());
        let node = fabric.add_node("n0");
        let c1 = VirtualClock::shared();
        let c2 = VirtualClock::shared();
        let cq1 = CompletionQueue::new(
            Arc::clone(&c1),
            Arc::clone(&node),
            NicProfile::default(),
            DeviceFunction::Physical,
        );
        let cq2 = CompletionQueue::new(
            Arc::clone(&c2),
            Arc::clone(&node),
            NicProfile::default(),
            DeviceFunction::Physical,
        );
        cq1.push(completion_at(10));
        cq2.push(completion_at(10));
        cq1.blocking_wait().unwrap();
        cq2.blocking_wait().unwrap();
        let t1 = c1.now().as_nanos();
        let t2 = c2.now().as_nanos();
        assert_ne!(t1, t2, "notifications must serialise");
        assert_eq!((t1 as i64 - t2 as i64).unsigned_abs(), 550);
    }

    #[test]
    fn pending_counts_queued_completions() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        assert_eq!(cq.pending(), 0);
        cq.push(completion_at(1));
        cq.push(completion_at(2));
        assert_eq!(cq.pending(), 2);
        cq.poll(1);
        assert_eq!(cq.pending(), 1);
    }
}
