//! Completion queues.
//!
//! A completion queue (CQ) collects work completions from one or more queue
//! pairs. Consumers can either *busy poll* it — the mechanism behind rFaaS
//! *hot* invocations — or block until a completion arrives — the mechanism
//! behind *warm* invocations. Busy polling costs CPU but observes the
//! completion almost immediately; blocking waits release the CPU but pay the
//! interrupt/wake-up latency and contend on the node's shared notification
//! channel.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use sim_core::{SimDuration, SimTime, VirtualClock};

use crate::device::{DeviceFunction, NicProfile};
use crate::fabric::FabricNode;
use crate::verbs::WorkCompletion;

/// How a consumer observes completions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WaitMode {
    /// Spin on the CQ; lowest latency, occupies the CPU (hot invocations).
    BusyPoll,
    /// Sleep until the completion event fires; frees the CPU but pays the
    /// wake-up cost (warm invocations).
    Blocking,
}

#[derive(Debug, Default)]
struct CqState {
    completions: VecDeque<WorkCompletion>,
    disconnected: bool,
    notifier: Option<CqNotifier>,
}

#[derive(Debug)]
struct CqInner {
    state: Mutex<CqState>,
    available: Condvar,
    clock: Arc<VirtualClock>,
    node: Arc<FabricNode>,
    profile: NicProfile,
    function: DeviceFunction,
}

#[derive(Debug, Default)]
struct NotifierState {
    seq: u64,
}

#[derive(Debug, Default)]
struct NotifierInner {
    state: Mutex<NotifierState>,
    changed: Condvar,
}

/// Edge notification channel shared by every member of a [`CqSet`]: each
/// delivery (or disconnect) on any member bumps a sequence number and wakes
/// sleepers, so one thread can block on N rings at once without busy
/// re-scanning them.
#[derive(Debug, Clone, Default)]
pub struct CqNotifier {
    inner: Arc<NotifierInner>,
}

impl CqNotifier {
    fn signal(&self) {
        let mut state = self.inner.state.lock();
        state.seq = state.seq.wrapping_add(1);
        drop(state);
        self.inner.changed.notify_all();
    }

    fn sequence(&self) -> u64 {
        self.inner.state.lock().seq
    }

    /// Block until the sequence number moves past `seen` or the wall-clock
    /// timeout expires. Returns `true` when woken by a signal.
    fn wait_past(&self, seen: u64, timeout: Duration) -> bool {
        // simlint::allow(wall_clock, reason = "bounds how long the host thread parks; virtual time is charged by the pickup cost model, not here")
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        while state.seq == seen {
            if self
                .inner
                .changed
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.seq != seen;
            }
        }
        true
    }
}

/// A completion queue bound to one consumer actor (its virtual clock) and one
/// fabric node (for notification contention accounting).
#[derive(Debug, Clone)]
pub struct CompletionQueue {
    inner: Arc<CqInner>,
}

impl CompletionQueue {
    /// Create a CQ for a consumer running on `node` with virtual clock
    /// `clock`, attached through the given device function.
    pub fn new(
        clock: Arc<VirtualClock>,
        node: Arc<FabricNode>,
        profile: NicProfile,
        function: DeviceFunction,
    ) -> CompletionQueue {
        CompletionQueue {
            inner: Arc::new(CqInner {
                state: Mutex::new(CqState::default()),
                available: Condvar::new(),
                clock,
                node,
                profile,
                function,
            }),
        }
    }

    /// The virtual clock of the CQ's consumer.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.inner.clock
    }

    /// Deliver a completion (called by the fabric / peer queue pairs).
    pub(crate) fn push(&self, completion: WorkCompletion) {
        let mut state = self.inner.state.lock();
        state.completions.push_back(completion);
        let notifier = state.notifier.clone();
        drop(state);
        self.inner.available.notify_all();
        if let Some(notifier) = notifier {
            notifier.signal();
        }
    }

    /// Mark the CQ as disconnected so blocked waiters wake up with `None`.
    pub(crate) fn disconnect(&self) {
        let mut state = self.inner.state.lock();
        state.disconnected = true;
        let notifier = state.notifier.clone();
        drop(state);
        self.inner.available.notify_all();
        if let Some(notifier) = notifier {
            notifier.signal();
        }
    }

    /// Whether the producing side has torn the connection down.
    pub fn is_disconnected(&self) -> bool {
        self.inner.state.lock().disconnected
    }

    /// Number of completions currently queued.
    pub fn pending(&self) -> usize {
        self.inner.state.lock().completions.len()
    }

    /// Non-blocking poll for up to `max` completions (busy-polling pickup).
    ///
    /// For each returned completion the consumer clock is synchronised to the
    /// completion's arrival time plus the polling pickup cost. Empty polls do
    /// not advance virtual time: an idle spinning thread does no useful
    /// virtual work.
    pub fn poll(&self, max: usize) -> Vec<WorkCompletion> {
        let mut drained = Vec::new();
        self.poll_into(max, &mut drained);
        drained
    }

    /// Like [`CompletionQueue::poll`], but drains into a caller-owned scratch
    /// buffer so the hot loop performs no steady-state allocations. Appends at
    /// most `max` completions to `out` and returns how many were appended.
    pub fn poll_into(&self, max: usize, out: &mut Vec<WorkCompletion>) -> usize {
        let n = self.poll_uncharged_into(max, out);
        for wc in &out[out.len() - n..] {
            self.charge_poll_pickup(wc);
        }
        n
    }

    /// Drain up to `max` completions into `out` **without** touching the
    /// consumer clock. This is the multiplexed-drain building block: an event
    /// loop that serves several consumers from one thread drains rings
    /// uncharged and then applies the per-consumer pickup cost (busy-poll or
    /// blocking) via [`CompletionQueue::charge_poll_pickup`] /
    /// [`CompletionQueue::charge_blocking_pickup`].
    pub fn poll_uncharged_into(&self, max: usize, out: &mut Vec<WorkCompletion>) -> usize {
        let mut state = self.inner.state.lock();
        let n = state.completions.len().min(max);
        out.extend(state.completions.drain(..n));
        n
    }

    /// Poll a single completion without blocking (allocation-free).
    pub fn poll_one(&self) -> Option<WorkCompletion> {
        let mut state = self.inner.state.lock();
        let wc = state.completions.pop_front()?;
        drop(state);
        self.charge_poll_pickup(&wc);
        Some(wc)
    }

    /// Synchronise the consumer clock to a completion observed by busy
    /// polling: arrival time plus the polling pickup cost.
    pub fn charge_poll_pickup(&self, wc: &WorkCompletion) {
        let pickup = self.inner.profile.completion_pickup
            + self.inner.function.message_overhead(&self.inner.profile);
        self.inner.clock.advance_to_then(wc.timestamp, pickup);
    }

    /// Busy-poll until a completion arrives (hot path). Returns `None` if the
    /// CQ is disconnected while waiting.
    pub fn busy_wait(&self) -> Option<WorkCompletion> {
        loop {
            if let Some(wc) = self.poll_one() {
                return Some(wc);
            }
            if self.inner.state.lock().disconnected {
                return None;
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
    }

    /// Block until a completion arrives (warm path). Charges the blocking
    /// wake-up latency and the per-node notification serialisation. Returns
    /// `None` if the CQ is disconnected while waiting.
    pub fn blocking_wait(&self) -> Option<WorkCompletion> {
        let mut state = self.inner.state.lock();
        loop {
            if let Some(wc) = state.completions.pop_front() {
                drop(state);
                return Some(self.charge_blocking_pickup(wc));
            }
            if state.disconnected {
                return None;
            }
            self.inner.available.wait(&mut state);
        }
    }

    /// Block until a completion arrives or the real-time timeout expires.
    /// The timeout is wall-clock (it bounds test execution time); the virtual
    /// cost model is identical to [`CompletionQueue::blocking_wait`].
    pub fn blocking_wait_timeout(&self, timeout: Duration) -> Option<WorkCompletion> {
        // simlint::allow(wall_clock, reason = "host-side wait bound so tests cannot hang; completions are billed in virtual time on pickup")
        let deadline = std::time::Instant::now() + timeout;
        let mut state = self.inner.state.lock();
        loop {
            if let Some(wc) = state.completions.pop_front() {
                drop(state);
                return Some(self.charge_blocking_pickup(wc));
            }
            if state.disconnected {
                return None;
            }
            // simlint::allow(wall_clock, reason = "re-checks the host-side deadline above after each wakeup")
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            if self
                .inner
                .available
                .wait_until(&mut state, deadline)
                .timed_out()
            {
                return state.completions.pop_front().map(|wc| {
                    drop(state);
                    self.charge_blocking_pickup(wc)
                });
            }
        }
    }

    /// Wait with the requested mode.
    pub fn wait(&self, mode: WaitMode) -> Option<WorkCompletion> {
        match mode {
            WaitMode::BusyPoll => self.busy_wait(),
            WaitMode::Blocking => self.blocking_wait(),
        }
    }

    /// Synchronise the consumer clock to a completion observed via a blocking
    /// wait: the notification serialises through the node's shared event
    /// channel and the consumer pays the wake-up latency. Public so a
    /// multiplexed event loop draining uncharged (see
    /// [`CompletionQueue::poll_uncharged_into`]) can bill a blocked consumer
    /// exactly as [`CompletionQueue::blocking_wait`] would have.
    pub fn charge_blocking_pickup(&self, wc: WorkCompletion) -> WorkCompletion {
        // Serialise the notification through the node's shared event channel:
        // concurrent blocking waiters on one node queue behind each other.
        let dispatch = self.inner.profile.notification_dispatch;
        let visible: SimTime = self
            .inner
            .node
            .serialize_notification(wc.timestamp, dispatch);
        let wakeup = self.inner.profile.blocking_wakeup
            + self.inner.function.blocking_extra(&self.inner.profile)
            + self.inner.profile.completion_pickup;
        self.inner.clock.advance_to_then(visible, wakeup);
        wc
    }

    /// The blocking wake-up penalty of this CQ's device function, exposed for
    /// cost-model introspection in benchmarks.
    pub fn blocking_penalty(&self) -> SimDuration {
        self.inner.profile.blocking_wakeup + self.inner.function.blocking_extra(&self.inner.profile)
    }

    /// Attach (or detach, with `None`) the edge notifier of a [`CqSet`].
    fn set_notifier(&self, notifier: Option<CqNotifier>) {
        self.inner.state.lock().notifier = notifier;
    }
}

/// A multiplexed poll/drain surface over N completion queues.
///
/// One event-loop thread registers every ring it serves and then alternates
/// between [`CqSet::poll_uncharged_into`] — which drains all members in
/// **registration order**, keeping multiplexed runs virtual-time
/// deterministic — and [`CqSet::wait`], which blocks on the shared
/// [`CqNotifier`] until any member receives a delivery or disconnect. The
/// drain is uncharged: the event loop applies the per-consumer pickup cost
/// itself ([`CompletionQueue::charge_poll_pickup`] or
/// [`CompletionQueue::charge_blocking_pickup`]) because only it knows which
/// consumer the completion belongs to and how that consumer waits.
#[derive(Debug, Default)]
pub struct CqSet {
    // `None` marks a deregistered member: tokens are indices, so slots are
    // tombstoned rather than removed to keep the remaining tokens stable.
    members: Vec<Option<CompletionQueue>>,
    notifier: CqNotifier,
}

impl CqSet {
    /// An empty set.
    pub fn new() -> CqSet {
        CqSet::default()
    }

    /// Register a CQ and return its member token: the index reported by
    /// [`CqSet::poll_uncharged_into`] for completions drained from it.
    /// Registration order is the drain order.
    pub fn register(&mut self, cq: &CompletionQueue) -> usize {
        cq.set_notifier(Some(self.notifier.clone()));
        self.members.push(Some(cq.clone()));
        self.members.len() - 1
    }

    /// Remove a member from the set, detaching its notifier. Its token is
    /// retired, not reused. Required once a member disconnects for good:
    /// a permanently disconnected member would otherwise turn every
    /// [`CqSet::wait`] into an immediate (spurious) wakeup.
    pub fn deregister(&mut self, token: usize) {
        if let Some(cq) = self.members[token].take() {
            cq.set_notifier(None);
        }
    }

    /// Number of registered (non-deregistered) members.
    pub fn len(&self) -> usize {
        self.members.iter().flatten().count()
    }

    /// Whether the set has no registered members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total completions currently queued across all members.
    pub fn pending(&self) -> usize {
        self.members.iter().flatten().map(|cq| cq.pending()).sum()
    }

    /// Drain up to `max_per_member` completions from every member, in
    /// registration order, into the caller's scratch buffer as
    /// `(member_token, completion)` pairs. No clock is charged — see the type
    /// docs. Returns how many pairs were appended.
    pub fn poll_uncharged_into(
        &self,
        max_per_member: usize,
        out: &mut Vec<(usize, WorkCompletion)>,
    ) -> usize {
        let mut drained = 0;
        for (token, cq) in self.members.iter().enumerate() {
            let Some(cq) = cq else { continue };
            let mut state = cq.inner.state.lock();
            let n = state.completions.len().min(max_per_member);
            out.extend(state.completions.drain(..n).map(|wc| (token, wc)));
            drained += n;
        }
        drained
    }

    /// Member access by token (registration index). Panics for a
    /// deregistered token.
    pub fn member(&self, token: usize) -> &CompletionQueue {
        self.members[token]
            .as_ref()
            .expect("CqSet member was deregistered")
    }

    /// Block until any member has a queued completion, any member
    /// disconnects, or the wall-clock timeout expires. Returns `true` if
    /// there may be work (queued completions or a disconnect edge), `false`
    /// on a quiet timeout. Never charges virtual time: like an empty poll,
    /// waiting is not useful virtual work.
    pub fn wait(&self, timeout: Duration) -> bool {
        // Snapshot the sequence number *before* re-checking the members: a
        // delivery racing with this wait bumps the sequence and the
        // `wait_past` below returns immediately instead of losing the wakeup.
        let seen = self.notifier.sequence();
        if self
            .members
            .iter()
            .flatten()
            .any(|cq| cq.pending() > 0 || cq.is_disconnected())
        {
            return true;
        }
        self.notifier.wait_past(seen, timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::verbs::{CompletionStatus, OpCode};
    use std::thread;

    fn make_cq(mode_function: DeviceFunction) -> (CompletionQueue, Arc<VirtualClock>) {
        let fabric = Fabric::new(NicProfile::default());
        let node = fabric.add_node("n0");
        let clock = VirtualClock::shared();
        let cq = CompletionQueue::new(
            Arc::clone(&clock),
            node,
            NicProfile::default(),
            mode_function,
        );
        (cq, clock)
    }

    fn completion_at(ts_us: u64) -> WorkCompletion {
        WorkCompletion {
            wr_id: 1,
            opcode: OpCode::Recv,
            status: CompletionStatus::Success,
            byte_len: 16,
            imm: Some(7),
            timestamp: SimTime::from_micros(ts_us),
            qp_num: 3,
        }
    }

    #[test]
    fn empty_poll_does_not_advance_clock() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        assert!(cq.poll(4).is_empty());
        assert_eq!(clock.now(), SimTime::ZERO);
    }

    #[test]
    fn poll_synchronises_clock_to_arrival() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        cq.push(completion_at(10));
        let wcs = cq.poll(4);
        assert_eq!(wcs.len(), 1);
        assert_eq!(wcs[0].imm, Some(7));
        // 10 us arrival + 65 ns pickup.
        assert_eq!(clock.now().as_nanos(), 10_065);
    }

    #[test]
    fn blocking_wait_charges_wakeup_latency() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        cq.push(completion_at(10));
        let wc = cq.blocking_wait().unwrap();
        assert!(wc.is_success());
        // arrival 10us + dispatch 550ns + wakeup 3800ns + pickup 65ns
        assert_eq!(clock.now().as_nanos(), 10_000 + 550 + 3_800 + 65);
    }

    #[test]
    fn virtual_function_blocking_is_slower() {
        let (phys, phys_clock) = make_cq(DeviceFunction::Physical);
        let (virt, virt_clock) = make_cq(DeviceFunction::Virtual);
        phys.push(completion_at(1));
        virt.push(completion_at(1));
        phys.blocking_wait().unwrap();
        virt.blocking_wait().unwrap();
        assert!(virt_clock.now() > phys_clock.now());
        let delta = virt_clock.now().as_nanos() - phys_clock.now().as_nanos();
        // 600 ns vf blocking extra + 25 ns message overhead tolerance window.
        assert!((600..=700).contains(&delta), "delta {delta}");
    }

    #[test]
    fn blocking_wait_wakes_on_push_from_other_thread() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.blocking_wait());
        thread::sleep(Duration::from_millis(20));
        cq.push(completion_at(5));
        let wc = handle.join().unwrap().unwrap();
        assert_eq!(wc.wr_id, 1);
    }

    #[test]
    fn busy_wait_picks_up_pushed_completion() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.busy_wait());
        thread::sleep(Duration::from_millis(10));
        cq.push(completion_at(2));
        assert!(handle.join().unwrap().is_some());
    }

    #[test]
    fn disconnect_wakes_blocked_waiters_with_none() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        let cq2 = cq.clone();
        let handle = thread::spawn(move || cq2.blocking_wait());
        thread::sleep(Duration::from_millis(10));
        cq.disconnect();
        assert!(handle.join().unwrap().is_none());
        // Busy wait also observes the disconnect.
        assert!(cq.busy_wait().is_none());
    }

    #[test]
    fn blocking_wait_timeout_returns_none_when_idle() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        assert!(cq
            .blocking_wait_timeout(Duration::from_millis(10))
            .is_none());
        cq.push(completion_at(1));
        assert!(cq
            .blocking_wait_timeout(Duration::from_millis(10))
            .is_some());
    }

    #[test]
    fn notification_contention_serialises_waiters() {
        // Two completions arriving at the same instant on the same node must
        // be observed at staggered virtual times by blocking waiters.
        let fabric = Fabric::new(NicProfile::default());
        let node = fabric.add_node("n0");
        let c1 = VirtualClock::shared();
        let c2 = VirtualClock::shared();
        let cq1 = CompletionQueue::new(
            Arc::clone(&c1),
            Arc::clone(&node),
            NicProfile::default(),
            DeviceFunction::Physical,
        );
        let cq2 = CompletionQueue::new(
            Arc::clone(&c2),
            Arc::clone(&node),
            NicProfile::default(),
            DeviceFunction::Physical,
        );
        cq1.push(completion_at(10));
        cq2.push(completion_at(10));
        cq1.blocking_wait().unwrap();
        cq2.blocking_wait().unwrap();
        let t1 = c1.now().as_nanos();
        let t2 = c2.now().as_nanos();
        assert_ne!(t1, t2, "notifications must serialise");
        assert_eq!((t1 as i64 - t2 as i64).unsigned_abs(), 550);
    }

    #[test]
    fn pending_counts_queued_completions() {
        let (cq, _clock) = make_cq(DeviceFunction::Physical);
        assert_eq!(cq.pending(), 0);
        cq.push(completion_at(1));
        cq.push(completion_at(2));
        assert_eq!(cq.pending(), 2);
        cq.poll(1);
        assert_eq!(cq.pending(), 1);
    }

    #[test]
    fn poll_into_reuses_scratch_without_steady_state_allocations() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        let mut scratch: Vec<WorkCompletion> = Vec::with_capacity(8);
        // Warm-up round sizes the buffer; every later round must reuse it.
        for round in 0..64_u64 {
            for i in 0..4 {
                cq.push(completion_at(round * 10 + i));
            }
            scratch.clear();
            let before = scratch.capacity();
            let n = cq.poll_into(8, &mut scratch);
            assert_eq!(n, 4);
            assert_eq!(scratch.len(), 4);
            assert_eq!(
                scratch.capacity(),
                before,
                "steady-state drain must not reallocate"
            );
        }
        assert!(clock.now() > SimTime::ZERO);
    }

    #[test]
    fn poll_uncharged_leaves_the_clock_alone() {
        let (cq, clock) = make_cq(DeviceFunction::Physical);
        cq.push(completion_at(10));
        let mut out = Vec::new();
        assert_eq!(cq.poll_uncharged_into(4, &mut out), 1);
        assert_eq!(clock.now(), SimTime::ZERO);
        // Charging afterwards reproduces the busy-poll pickup exactly.
        cq.charge_poll_pickup(&out[0]);
        assert_eq!(clock.now().as_nanos(), 10_065);
    }

    #[test]
    fn cq_set_drains_members_in_registration_order() {
        let (a, _) = make_cq(DeviceFunction::Physical);
        let (b, _) = make_cq(DeviceFunction::Physical);
        let mut set = CqSet::new();
        let ta = set.register(&a);
        let tb = set.register(&b);
        assert_eq!((ta, tb), (0, 1));
        // Push in the "wrong" order; the drain must still visit a before b.
        b.push(completion_at(2));
        a.push(completion_at(1));
        let mut out = Vec::new();
        assert_eq!(set.poll_uncharged_into(16, &mut out), 2);
        assert_eq!(out[0].0, ta);
        assert_eq!(out[1].0, tb);
        assert_eq!(set.pending(), 0);
    }

    #[test]
    fn cq_set_wait_wakes_on_member_push_and_disconnect() {
        let (a, _) = make_cq(DeviceFunction::Physical);
        let (b, _) = make_cq(DeviceFunction::Physical);
        let mut set = CqSet::new();
        set.register(&a);
        set.register(&b);
        // Quiet timeout.
        assert!(!set.wait(Duration::from_millis(5)));
        // Pre-queued work returns immediately.
        b.push(completion_at(1));
        assert!(set.wait(Duration::from_millis(5)));
        let mut out = Vec::new();
        set.poll_uncharged_into(16, &mut out);
        // A push from another thread wakes the sleeper.
        let b2 = b.clone();
        let pusher = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            b2.push(completion_at(2));
        });
        assert!(set.wait(Duration::from_secs(5)));
        pusher.join().unwrap();
        out.clear();
        set.poll_uncharged_into(16, &mut out);
        // A disconnect edge also wakes the sleeper.
        let a2 = a.clone();
        let dropper = thread::spawn(move || {
            thread::sleep(Duration::from_millis(10));
            a2.disconnect();
        });
        assert!(set.wait(Duration::from_secs(5)));
        dropper.join().unwrap();
    }

    #[test]
    fn cq_set_deregister_silences_dead_members() {
        let (a, _) = make_cq(DeviceFunction::Physical);
        let (b, _) = make_cq(DeviceFunction::Physical);
        let mut set = CqSet::new();
        let ta = set.register(&a);
        let tb = set.register(&b);
        assert_eq!(set.len(), 2);
        a.disconnect();
        // A permanently disconnected member makes every wait return
        // immediately; deregistering it restores quiet timeouts.
        assert!(set.wait(Duration::from_millis(1)));
        set.deregister(ta);
        assert_eq!(set.len(), 1);
        assert!(!set.wait(Duration::from_millis(1)));
        // Tokens are stable: the surviving member keeps its index and
        // pushes to the dead slot's CQ are no longer drained.
        a.push(completion_at(1));
        b.push(completion_at(2));
        let mut out = Vec::new();
        assert_eq!(set.poll_uncharged_into(16, &mut out), 1);
        assert_eq!(out[0].0, tb);
        // Deregistering twice is a no-op.
        set.deregister(ta);
    }
}
