//! NIC device profiles and the calibrated cost model.
//!
//! A [`NicProfile`] collects every latency/bandwidth constant of the software
//! fabric. The default profile is calibrated against the numbers the paper
//! reports for its evaluation cluster (Sec. V, "Platform"):
//!
//! * Mellanox MT27800, 100 Gb/s RoCEv2 link,
//! * measured RTT of 3.69 µs for small messages (`ib_write_lat`),
//! * measured bandwidth of 11 686.4 MiB/s,
//! * message inlining effective up to 128 bytes,
//! * blocking completion waits several microseconds slower than busy polling,
//! * SR-IOV virtual functions add ~50 ns (hot) / ~650 ns (warm) per invocation.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

/// Calibrated performance profile of an RDMA NIC and its link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicProfile {
    /// One-way propagation + switching latency of the link.
    pub one_way_latency: SimDuration,
    /// Sustainable link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Cost of building a WQE and ringing the doorbell on `post_send`.
    pub post_send_overhead: SimDuration,
    /// Cost of each *additional* WQE in a doorbell-batched post: the chain
    /// shares one doorbell write, so follow-up WQEs only pay the descriptor
    /// build, not the MMIO.
    pub chained_wqe_overhead: SimDuration,
    /// Cost of posting a receive work request.
    pub post_recv_overhead: SimDuration,
    /// Largest payload that can be inlined into the WQE.
    pub max_inline_data: usize,
    /// Extra DMA-fetch cost paid when a payload is *not* inlined.
    pub non_inline_dma_fetch: SimDuration,
    /// Cost of consuming one CQE with busy polling.
    pub completion_pickup: SimDuration,
    /// Extra latency of a blocking (event-based) completion wait: interrupt
    /// generation, scheduler wake-up and cache refill.
    pub blocking_wakeup: SimDuration,
    /// Serialisation cost per blocking notification on the shared event
    /// channel of one node; concurrent blocking waiters contend on this
    /// ("contention on RDMA notifications", Fig. 10).
    pub notification_dispatch: SimDuration,
    /// Execution time of a remote atomic at the target NIC.
    pub atomic_execution: SimDuration,
    /// Latency to generate the initiator-side CQE once the last byte left.
    pub local_completion: SimDuration,
    /// Reliable-connection establishment cost (QP transition + CM handshake).
    pub connection_setup: SimDuration,
    /// Re-establishment cost of a *warm* reliable connection: the peers have
    /// exchanged QP attributes before, cached path records and pinned pages
    /// survive in the pool, so only the state-machine transition is paid.
    pub warm_connection_setup: SimDuration,
    /// Setup cost of an unreliable-datagram style endpoint (UD/DC): no
    /// per-peer handshake, one address-handle creation — the cheap
    /// first-contact transport for control-plane traffic.
    pub datagram_setup: SimDuration,
    /// Per-message overhead added by an SR-IOV virtual function (each
    /// direction) when the executor runs inside a container.
    pub vf_message_overhead: SimDuration,
    /// Additional blocking-wakeup penalty when interrupts are routed through
    /// a virtual function.
    pub vf_blocking_extra: SimDuration,
    /// Maximum number of outstanding receive work requests per QP.
    pub max_recv_queue_depth: usize,
}

impl NicProfile {
    /// Profile calibrated to the paper's evaluation cluster: ConnectX-5
    /// (MT27800) with a 100 Gb/s RoCEv2 link.
    pub fn mellanox_cx5_100g() -> NicProfile {
        NicProfile {
            // 2 * (0.08 post + 1.70 one-way + 0.065 pickup)
            // ≈ 3.69 µs RTT for small inlined writes.
            one_way_latency: SimDuration::from_nanos(1_700),
            // 11 686.4 MiB/s measured by the paper.
            bandwidth_bytes_per_sec: 11_686.4 * 1024.0 * 1024.0,
            post_send_overhead: SimDuration::from_nanos(80),
            chained_wqe_overhead: SimDuration::from_nanos(25),
            post_recv_overhead: SimDuration::from_nanos(60),
            max_inline_data: 128,
            non_inline_dma_fetch: SimDuration::from_nanos(300),
            completion_pickup: SimDuration::from_nanos(65),
            blocking_wakeup: SimDuration::from_nanos(3_800),
            notification_dispatch: SimDuration::from_nanos(550),
            atomic_execution: SimDuration::from_nanos(120),
            local_completion: SimDuration::from_nanos(100),
            connection_setup: SimDuration::from_micros(450),
            warm_connection_setup: SimDuration::from_micros(45),
            datagram_setup: SimDuration::from_micros(18),
            vf_message_overhead: SimDuration::from_nanos(25),
            vf_blocking_extra: SimDuration::from_nanos(600),
            max_recv_queue_depth: 1024,
        }
    }

    /// A lower-performance profile approximating software RDMA (SoftRoCE):
    /// used by the modularity tests to show the platform is device-agnostic.
    pub fn soft_roce() -> NicProfile {
        NicProfile {
            one_way_latency: SimDuration::from_micros(18),
            bandwidth_bytes_per_sec: 2.5e9,
            post_send_overhead: SimDuration::from_nanos(400),
            chained_wqe_overhead: SimDuration::from_nanos(150),
            post_recv_overhead: SimDuration::from_nanos(300),
            max_inline_data: 0,
            non_inline_dma_fetch: SimDuration::from_nanos(800),
            completion_pickup: SimDuration::from_nanos(200),
            blocking_wakeup: SimDuration::from_micros(6),
            notification_dispatch: SimDuration::from_micros(2),
            atomic_execution: SimDuration::from_nanos(900),
            local_completion: SimDuration::from_nanos(400),
            connection_setup: SimDuration::from_millis(2),
            warm_connection_setup: SimDuration::from_micros(200),
            datagram_setup: SimDuration::from_micros(90),
            vf_message_overhead: SimDuration::from_nanos(100),
            vf_blocking_extra: SimDuration::from_micros(2),
            max_recv_queue_depth: 256,
        }
    }

    /// Serialisation time of `bytes` on this link.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Whether a payload of `bytes` can be inlined into the work request.
    pub fn can_inline(&self, bytes: usize) -> bool {
        bytes <= self.max_inline_data
    }

    /// Initiator-side cost of issuing a send-queue operation for `bytes` of
    /// payload: WQE build + doorbell, plus the DMA fetch if not inlined.
    pub fn issue_cost(&self, bytes: usize) -> SimDuration {
        if self.can_inline(bytes) {
            self.post_send_overhead
        } else {
            self.post_send_overhead + self.non_inline_dma_fetch
        }
    }

    /// Issue cost of a WQE that rides an earlier doorbell (position > 0 in a
    /// batched post): descriptor build plus the DMA fetch if not inlined, but
    /// no doorbell MMIO of its own.
    pub fn issue_cost_chained(&self, bytes: usize) -> SimDuration {
        if self.can_inline(bytes) {
            self.chained_wqe_overhead
        } else {
            self.chained_wqe_overhead + self.non_inline_dma_fetch
        }
    }

    /// Cost of serving one remote-fork page fault of `page_bytes` with a
    /// single one-sided READ from the parent node: issue the READ, wait a
    /// round trip, stream the page back, pick the completion up. The
    /// initiator is the *child*; the parent's CPU is never involved — the
    /// property that makes MITOSIS-style fork viable.
    pub fn fork_page_read_cost(&self, page_bytes: usize) -> SimDuration {
        self.fork_read_cost(1, page_bytes)
    }

    /// Cost of a batched prefetch window: `pages` page READs posted as one
    /// chained batch (one doorbell, one shared round trip, back-to-back
    /// serialisation), amortising the per-fault overhead that makes
    /// page-at-a-time faulting expensive.
    pub fn fork_read_cost(&self, pages: usize, page_bytes: usize) -> SimDuration {
        if pages == 0 || page_bytes == 0 {
            return SimDuration::ZERO;
        }
        // READs carry no payload outbound, so nothing inlines: every WQE
        // pays its descriptor DMA fetch.
        self.post_send_overhead
            + self.non_inline_dma_fetch
            + (self.chained_wqe_overhead + self.non_inline_dma_fetch) * (pages as u64 - 1)
            + self.serialization(pages * page_bytes)
            + self.one_way_latency * 2
            + self.completion_pickup
    }

    /// Expected uncontended round-trip time of a write ping-pong with
    /// payloads of `bytes` in each direction — the `ib_write_lat` baseline the
    /// paper compares against in Fig. 8.
    pub fn write_pingpong_rtt(&self, bytes: usize) -> SimDuration {
        let one_way = self.issue_cost(bytes)
            + self.serialization(bytes)
            + self.one_way_latency
            + self.completion_pickup;
        one_way * 2
    }

    /// Cost of fetching `bytes` of state with a single one-sided READ from
    /// the owner node: issue the READ (no outbound payload, so the WQE always
    /// pays its descriptor DMA fetch), a full round trip, the value streaming
    /// back, and the initiator-side completion pickup. The owner's CPU is
    /// never involved — the property the state plane's hot-key path relies
    /// on.
    pub fn state_read_cost(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.post_send_overhead
            + self.non_inline_dma_fetch
            + self.serialization(bytes)
            + self.one_way_latency * 2
            + self.completion_pickup
    }

    /// Cost of pushing `bytes` of state to the owner node with a one-sided
    /// Write: issue (inlined when small), stream the value out, one-way
    /// propagation, and the local CQE once the last byte left. No remote
    /// completion is awaited — push-model puts are fire-and-forget on the
    /// data path, with ordering recovered on the control path.
    pub fn state_write_cost(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        self.issue_cost(bytes)
            + self.serialization(bytes)
            + self.one_way_latency
            + self.local_completion
    }
}

impl Default for NicProfile {
    fn default() -> Self {
        NicProfile::mellanox_cx5_100g()
    }
}

/// Whether an endpoint attaches to the NIC's physical function or to an
/// SR-IOV virtual function passed into a container (Sec. III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeviceFunction {
    /// Bare-metal access to the physical function.
    Physical,
    /// Containerised access through an SR-IOV virtual function.
    Virtual,
}

impl DeviceFunction {
    /// Per-message overhead of this function type.
    pub fn message_overhead(self, profile: &NicProfile) -> SimDuration {
        match self {
            DeviceFunction::Physical => SimDuration::ZERO,
            DeviceFunction::Virtual => profile.vf_message_overhead,
        }
    }

    /// Extra blocking-wakeup penalty of this function type.
    pub fn blocking_extra(self, profile: &NicProfile) -> SimDuration {
        match self {
            DeviceFunction::Physical => SimDuration::ZERO,
            DeviceFunction::Virtual => profile.vf_blocking_extra,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profile_matches_paper_rtt() {
        let p = NicProfile::default();
        // Paper: 3.69 us RTT for small messages.
        let rtt = p.write_pingpong_rtt(8).as_micros_f64();
        assert!((rtt - 3.69).abs() < 0.15, "small-message RTT was {rtt} us");
    }

    #[test]
    fn bandwidth_matches_paper() {
        let p = NicProfile::default();
        // 1 MiB should serialize in roughly 1/11686 s ≈ 85.6 us.
        let t = p.serialization(1024 * 1024).as_micros_f64();
        assert!((t - 85.6).abs() < 2.0, "1 MiB serialization was {t} us");
        assert!(p.serialization(0).is_zero());
    }

    #[test]
    fn inline_threshold_behaviour() {
        let p = NicProfile::default();
        assert!(p.can_inline(128));
        assert!(!p.can_inline(129));
        assert!(p.issue_cost(64) < p.issue_cost(256));
        // The non-inline penalty is the paper's ~300 ns 128-byte anomaly.
        let delta = p.issue_cost(256).saturating_sub(p.issue_cost(64));
        assert_eq!(delta, p.non_inline_dma_fetch);
    }

    #[test]
    fn chained_wqes_are_cheaper_than_doorbells() {
        for p in [NicProfile::mellanox_cx5_100g(), NicProfile::soft_roce()] {
            assert!(p.issue_cost_chained(8) < p.issue_cost(8));
        }
        // The DMA-fetch penalty still applies to chained non-inline WQEs.
        let p = NicProfile::mellanox_cx5_100g();
        assert_eq!(
            p.issue_cost_chained(1 << 20)
                .saturating_sub(p.issue_cost_chained(8)),
            p.non_inline_dma_fetch
        );
    }

    #[test]
    fn rtt_grows_with_payload() {
        let p = NicProfile::default();
        let small = p.write_pingpong_rtt(8);
        let large = p.write_pingpong_rtt(1024 * 1024);
        assert!(large > small * 10);
    }

    #[test]
    fn virtual_function_adds_overhead() {
        let p = NicProfile::default();
        assert!(DeviceFunction::Physical.message_overhead(&p).is_zero());
        assert!(!DeviceFunction::Virtual.message_overhead(&p).is_zero());
        assert!(
            DeviceFunction::Virtual.blocking_extra(&p)
                > DeviceFunction::Physical.blocking_extra(&p)
        );
    }

    #[test]
    fn connection_setup_tiers_are_ordered() {
        // Full RC handshake ≫ warm re-establishment ≫ datagram first contact:
        // the spread the connection pool and the control-plane datagram path
        // amortise. Holds on every profile.
        for p in [NicProfile::mellanox_cx5_100g(), NicProfile::soft_roce()] {
            assert!(p.warm_connection_setup * 5 <= p.connection_setup);
            assert!(p.datagram_setup < p.warm_connection_setup);
        }
    }

    #[test]
    fn state_access_tiers_are_ordered() {
        for p in [NicProfile::mellanox_cx5_100g(), NicProfile::soft_roce()] {
            // A one-sided read pays two one-way latencies, a push-model write
            // only one: the read can never be cheaper than the write of the
            // same value.
            for bytes in [64usize, 4096, 1 << 20] {
                assert!(p.state_read_cost(bytes) > p.state_write_cost(bytes));
            }
            // A one-sided read beats a full write ping-pong of the same
            // payload once the value outgrows inlining — the
            // copy-in/copy-out baseline pays that ping-pong per invocation.
            for bytes in [4096usize, 1 << 20] {
                assert!(p.state_read_cost(bytes) < p.write_pingpong_rtt(bytes));
            }
            assert!(p.state_read_cost(0).is_zero());
            assert!(p.state_write_cost(0).is_zero());
            // Large values are bandwidth-bound: doubling the value roughly
            // doubles the wire time.
            let one = p.state_read_cost(1 << 20);
            let two = p.state_read_cost(2 << 20);
            assert!(two > one);
            assert!(two < one * 3);
        }
    }

    #[test]
    fn soft_roce_is_slower() {
        let hw = NicProfile::mellanox_cx5_100g();
        let sw = NicProfile::soft_roce();
        assert!(sw.write_pingpong_rtt(8) > hw.write_pingpong_rtt(8) * 5);
        assert!(sw.bandwidth_bytes_per_sec < hw.bandwidth_bytes_per_sec);
    }
}
