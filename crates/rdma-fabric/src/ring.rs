//! Receive-buffer rings with automatic repost.
//!
//! rFaaS workers keep a fixed-depth ring of posted receives so that a client
//! can fire invocations back to back without ever observing
//! `ReceiverNotReady`; after every consumed completion the slot is pushed to
//! the back of the ring and re-posted (Sec. IV-A: "the executor re-posts the
//! receive buffer immediately after consuming it"). The same structure backs
//! the client side, where each result notification consumes one slot.
//!
//! The ring is split in two layers:
//!
//! * [`RingState`] — the pure slot state machine (posted FIFO + consumed
//!   set). It owns the invariants the property tests pin down: no
//!   interleaving of post/consume/repost may lose a slot, delivery is FIFO
//!   in post order, and delivery into an empty ring is rejected.
//! * [`ReceiveRing`] — the live wrapper that registers one slab of memory,
//!   posts one receive per slot on a [`QueuePair`], and (by default)
//!   re-posts a slot automatically as soon as its completion is picked up —
//!   correct whenever the slot is a pure doorbell, which is what rFaaS uses
//!   it for (payloads travel one-sided into registered buffers, not into the
//!   ring slots).

use std::collections::VecDeque;

use parking_lot::Mutex;

use crate::error::{FabricError, Result};
use crate::memory::{AccessFlags, MemoryRegion};
use crate::qp::{Endpoint, QueuePair};
use crate::srq::SharedReceiveQueue;
use crate::verbs::{RecvRequest, Sge, WorkCompletion};

/// Pure state machine of a receive ring: every slot is either *posted*
/// (waiting for a message, FIFO position known) or *consumed* (delivered to
/// the application, awaiting repost). There is no third state — a slot can
/// never leak.
#[derive(Debug, Clone)]
pub struct RingState {
    depth: usize,
    /// Slots currently posted, front = next to be consumed by a delivery.
    posted: VecDeque<usize>,
    /// `consumed[slot]` — delivered to the application, not yet re-posted.
    consumed: Vec<bool>,
}

impl RingState {
    /// A ring of `depth` slots, all posted in index order (slot 0 first).
    pub fn new(depth: usize) -> RingState {
        RingState {
            depth,
            posted: (0..depth).collect(),
            consumed: vec![false; depth],
        }
    }

    /// Number of slots in the ring.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Number of slots currently posted.
    pub fn posted(&self) -> usize {
        self.posted.len()
    }

    /// Number of slots delivered but not yet re-posted.
    pub fn consumed(&self) -> usize {
        self.consumed.iter().filter(|c| **c).count()
    }

    /// The slot an incoming message will land in next, if any.
    pub fn front(&self) -> Option<usize> {
        self.posted.front().copied()
    }

    /// Deliver one message: consumes the oldest posted slot (FIFO, matching
    /// the order a reliable-connected QP consumes its receive queue) and
    /// returns its index. An empty ring rejects the delivery the same way the
    /// transport rejects a write-with-immediate without a posted receive.
    pub fn deliver(&mut self) -> Result<usize> {
        let slot = self
            .posted
            .pop_front()
            .ok_or(FabricError::ReceiverNotReady)?;
        self.consumed[slot] = true;
        Ok(slot)
    }

    /// Deliver a message into a *specific* posted slot, regardless of FIFO
    /// position. An SRQ-backed ring needs this: several QPs consume from the
    /// shared queue and their completion queues are drained in sweep order,
    /// so deliveries are observed out of post order. Rejects slots that are
    /// out of range or not currently posted.
    pub fn deliver_slot(&mut self, slot: usize) -> Result<()> {
        if slot >= self.depth || self.consumed[slot] {
            return Err(FabricError::ReceiverNotReady);
        }
        let position = self
            .posted
            .iter()
            .position(|s| *s == slot)
            .ok_or(FabricError::ReceiverNotReady)?;
        self.posted.remove(position);
        self.consumed[slot] = true;
        Ok(())
    }

    /// Return a consumed slot to the back of the posted FIFO. Reposting a
    /// slot that is still posted (or out of range) is a caller bug and is
    /// rejected rather than silently duplicating the slot.
    pub fn repost(&mut self, slot: usize) -> Result<()> {
        if slot >= self.depth || !self.consumed[slot] {
            return Err(FabricError::DeviceLimitExceeded {
                limit: "repost of a slot that is not consumed",
            });
        }
        self.consumed[slot] = false;
        self.posted.push_back(slot);
        Ok(())
    }
}

/// A completion picked up through a [`ReceiveRing`].
#[derive(Debug, Clone)]
pub struct RingCompletion {
    /// Ring slot the receive was posted from; `None` when the completion
    /// belongs to a receive posted outside the ring (overflow extras).
    pub slot: Option<usize>,
    /// The underlying work completion.
    pub wc: WorkCompletion,
}

/// A live receive ring bound to one queue pair.
///
/// One slab of registered memory holds `depth` slots of `slot_len` bytes;
/// one receive work request per slot is posted with `wr_id == slot`. Pickup
/// helpers mirror the completion-queue API (busy poll, blocking with
/// timeout) and — in the default automatic mode — repost the consumed slot
/// before handing the completion to the caller, so the ring never drains as
/// long as at most `depth` messages are in flight.
#[derive(Debug)]
pub struct ReceiveRing {
    backing: RingBacking,
    region: MemoryRegion,
    slot_len: usize,
    /// Immutable after construction; duplicated outside the state mutex so
    /// hot-path callers (per-submission overflow checks, adopt) read it
    /// lock-free.
    depth: usize,
    auto_repost: bool,
    state: Mutex<RingState>,
}

/// Where the ring posts its slots: a private queue pair (classic per-
/// connection ring) or a shared receive queue serving many QPs.
#[derive(Debug)]
enum RingBacking {
    Qp(QueuePair),
    Srq(SharedReceiveQueue),
}

impl ReceiveRing {
    /// Build a ring of `depth` slots of `slot_len` bytes each and post every
    /// slot. Slots are re-posted automatically at pickup time.
    pub fn new(qp: &QueuePair, depth: usize, slot_len: usize) -> Result<ReceiveRing> {
        Self::build(
            RingBacking::Qp(qp.clone()),
            qp.pd().clone(),
            depth,
            slot_len,
            true,
        )
    }

    /// Same ring, but the caller re-posts slots explicitly with
    /// [`ReceiveRing::repost`] — needed when slot contents (two-sided SENDs)
    /// must be read before the slot may be overwritten.
    pub fn with_manual_repost(
        qp: &QueuePair,
        depth: usize,
        slot_len: usize,
    ) -> Result<ReceiveRing> {
        Self::build(
            RingBacking::Qp(qp.clone()),
            qp.pd().clone(),
            depth,
            slot_len,
            false,
        )
    }

    /// Build a ring whose slots are posted into a *shared* receive queue
    /// instead of a private QP: one ring serves every QP attached to the
    /// SRQ, so receive memory no longer scales with connection count. The
    /// slot slab is registered in `endpoint`'s protection domain. Pickup
    /// happens externally (the caller drains the attached QPs' completion
    /// queues, e.g. through a [`crate::CqSet`]) and hands raw completions to
    /// [`ReceiveRing::adopt`]; deliveries may arrive in any slot order.
    pub fn on_srq(
        endpoint: &Endpoint,
        srq: &SharedReceiveQueue,
        depth: usize,
        slot_len: usize,
    ) -> Result<ReceiveRing> {
        Self::build(
            RingBacking::Srq(srq.clone()),
            endpoint.pd.clone(),
            depth,
            slot_len,
            true,
        )
    }

    fn build(
        backing: RingBacking,
        pd: crate::pd::ProtectionDomain,
        depth: usize,
        slot_len: usize,
        auto_repost: bool,
    ) -> Result<ReceiveRing> {
        if depth == 0 {
            return Err(FabricError::DeviceLimitExceeded {
                limit: "receive ring depth must be non-zero",
            });
        }
        let region = pd.register(depth * slot_len.max(1), AccessFlags::LOCAL_ONLY);
        let ring = ReceiveRing {
            backing,
            region,
            slot_len: slot_len.max(1),
            depth,
            auto_repost,
            state: Mutex::new(RingState::new(depth)),
        };
        for slot in 0..depth {
            ring.post_slot(slot)?;
        }
        Ok(ring)
    }

    fn post_slot(&self, slot: usize) -> Result<()> {
        match &self.backing {
            RingBacking::Qp(qp) => qp.post_recv(self.recv_request(slot)),
            RingBacking::Srq(srq) => srq.post(self.recv_request(slot)),
        }
    }

    fn recv_request(&self, slot: usize) -> RecvRequest {
        RecvRequest {
            wr_id: slot as u64,
            local: Sge::range(&self.region, slot * self.slot_len, self.slot_len),
        }
    }

    /// Number of slots in the ring (lock-free: fixed at construction).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Slots currently posted (available for incoming messages).
    pub fn posted_slots(&self) -> usize {
        self.state.lock().posted()
    }

    /// Bytes currently stored in `slot` (meaningful after a two-sided SEND).
    pub fn slot_bytes(&self, slot: usize) -> Result<Vec<u8>> {
        self.region.read(slot * self.slot_len, self.slot_len)
    }

    /// Map a raw completion onto the ring: consume the slot it landed in and,
    /// in automatic mode, immediately re-post it.
    ///
    /// Total by design — a completion the completion queue already handed
    /// over must never be dropped. Completions whose `wr_id` does not name a
    /// ring slot pass through as foreign (`slot: None`); so does a `wr_id`
    /// that collides with a slot index while that slot is not at the ring's
    /// front (a receive posted outside the ring by a caller ignoring the
    /// reserve-high-`wr_id` contract below).
    ///
    /// Public so an external event loop that drains this ring's CQ through a
    /// multiplexed [`crate::CqSet`] can hand the raw completions back to the
    /// ring for slot accounting and auto-repost.
    pub fn adopt(&self, wc: WorkCompletion) -> RingCompletion {
        let slot_id = wc.wr_id as usize;
        if wc.wr_id == u64::MAX || slot_id >= self.depth() {
            return RingCompletion { slot: None, wc };
        }
        {
            let mut state = self.state.lock();
            match &self.backing {
                RingBacking::Qp(_) => {
                    // The QP consumes receives FIFO, so a ring delivery
                    // always hits the front slot; anything else is a foreign
                    // receive whose wr_id happens to collide with a slot
                    // index.
                    if state.front() != Some(slot_id) {
                        return RingCompletion { slot: None, wc };
                    }
                    state
                        .deliver()
                        .expect("front() is Some, deliver cannot fail");
                }
                RingBacking::Srq(_) => {
                    // Several QPs drain from the shared queue and their CQs
                    // are swept in registration order, so deliveries land in
                    // arbitrary slot order.
                    if state.deliver_slot(slot_id).is_err() {
                        return RingCompletion { slot: None, wc };
                    }
                }
            }
        }
        if let RingBacking::Srq(srq) = &self.backing {
            // The buffer is free again: return the consuming QP's credit.
            srq.release(wc.qp_num);
        }
        if self.auto_repost {
            // A failed re-post only happens on a disconnected QP, where the
            // next wait returns None anyway; the completion in hand is
            // still delivered to the caller.
            let _ = self.repost(slot_id);
        }
        RingCompletion {
            slot: Some(slot_id),
            wc,
        }
    }

    /// Re-post a consumed slot (no-op guard: rejects non-consumed slots).
    ///
    /// Receives posted *outside* the ring on the same queue pair must use
    /// `wr_id`s at or above the ring depth (`u64::MAX` is conventional), or
    /// their completions are indistinguishable from slot deliveries.
    pub fn repost(&self, slot: usize) -> Result<()> {
        self.state.lock().repost(slot)?;
        self.post_slot(slot)
    }

    /// The private queue pair backing this ring; `None` for SRQ-backed rings
    /// (their pickup runs through the attached QPs' completion queues).
    fn backing_qp(&self) -> Option<&QueuePair> {
        match &self.backing {
            RingBacking::Qp(qp) => Some(qp),
            RingBacking::Srq(_) => None,
        }
    }

    /// Non-blocking pickup of one completion. `None` on SRQ-backed rings —
    /// drain the attached QPs' CQs and call [`ReceiveRing::adopt`] instead.
    pub fn poll_one(&self) -> Option<RingCompletion> {
        let wc = self.backing_qp()?.recv_cq().poll_one()?;
        Some(self.adopt(wc))
    }

    /// Busy-poll until a completion arrives (hot path). `None` when the
    /// queue pair disconnects while waiting, or on an SRQ-backed ring.
    pub fn busy_wait(&self) -> Option<RingCompletion> {
        let wc = self.backing_qp()?.recv_cq().busy_wait()?;
        Some(self.adopt(wc))
    }

    /// Block until a completion arrives or the wall-clock timeout expires
    /// (warm path; the virtual wake-up cost is charged by the CQ).
    pub fn blocking_wait_timeout(&self, timeout: std::time::Duration) -> Option<RingCompletion> {
        let wc = self
            .backing_qp()?
            .recv_cq()
            .blocking_wait_timeout(timeout)?;
        Some(self.adopt(wc))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::memory::AccessFlags;
    use crate::qp::Endpoint;
    use crate::verbs::SendRequest;

    fn connected_pair() -> (QueuePair, QueuePair) {
        let fabric = Fabric::with_defaults();
        let a = QueuePair::new(&Endpoint::new(&fabric, &fabric.add_node("client")));
        let b = QueuePair::new(&Endpoint::new(&fabric, &fabric.add_node("server")));
        QueuePair::connect_pair(&a, &b).unwrap();
        (a, b)
    }

    fn write_with_imm(from: &QueuePair, to: &QueuePair, imm: u32) -> Result<()> {
        let src = from.pd().register(8, AccessFlags::LOCAL_ONLY);
        let dst = to.pd().register(8, AccessFlags::REMOTE_WRITE);
        from.post_send(
            imm as u64,
            SendRequest::WriteWithImm {
                local: Sge::whole(&src),
                remote: dst.remote_handle(),
                imm,
            },
            false,
        )
    }

    #[test]
    fn ring_state_starts_fully_posted() {
        let state = RingState::new(4);
        assert_eq!(state.depth(), 4);
        assert_eq!(state.posted(), 4);
        assert_eq!(state.consumed(), 0);
        assert_eq!(state.front(), Some(0));
    }

    #[test]
    fn deliveries_are_fifo_and_reposts_queue_at_the_back() {
        let mut state = RingState::new(3);
        assert_eq!(state.deliver().unwrap(), 0);
        assert_eq!(state.deliver().unwrap(), 1);
        state.repost(0).unwrap();
        // 2 was posted before the re-posted 0.
        assert_eq!(state.deliver().unwrap(), 2);
        assert_eq!(state.deliver().unwrap(), 0);
    }

    #[test]
    fn empty_ring_rejects_delivery() {
        let mut state = RingState::new(1);
        state.deliver().unwrap();
        assert_eq!(state.deliver().unwrap_err(), FabricError::ReceiverNotReady);
    }

    #[test]
    fn double_or_foreign_repost_is_rejected() {
        let mut state = RingState::new(2);
        assert!(state.repost(0).is_err()); // still posted
        assert!(state.repost(7).is_err()); // out of range
        let slot = state.deliver().unwrap();
        state.repost(slot).unwrap();
        assert!(state.repost(slot).is_err()); // already back in the ring
    }

    #[test]
    fn live_ring_auto_reposts_and_never_drains() {
        let (client, server) = connected_pair();
        let ring = ReceiveRing::new(&server, 2, 8).unwrap();
        assert_eq!(ring.posted_slots(), 2);
        // Many more messages than the depth: every pickup re-posts its slot.
        for i in 0..10u32 {
            write_with_imm(&client, &server, i).unwrap();
            let c = ring.busy_wait().unwrap();
            assert_eq!(c.wc.imm, Some(i));
            assert!(c.slot.is_some());
            assert_eq!(ring.posted_slots(), 2);
        }
    }

    #[test]
    fn manual_ring_drains_without_repost_and_rejects_overflow() {
        let (client, server) = connected_pair();
        let ring = ReceiveRing::with_manual_repost(&server, 2, 8).unwrap();
        write_with_imm(&client, &server, 1).unwrap();
        write_with_imm(&client, &server, 2).unwrap();
        let first = ring.poll_one().unwrap();
        let second = ring.poll_one().unwrap();
        assert_eq!(ring.posted_slots(), 0);
        // The transport itself now rejects further writes: ring empty.
        assert_eq!(
            write_with_imm(&client, &server, 3).unwrap_err(),
            FabricError::ReceiverNotReady
        );
        ring.repost(first.slot.unwrap()).unwrap();
        ring.repost(second.slot.unwrap()).unwrap();
        write_with_imm(&client, &server, 3).unwrap();
        assert_eq!(ring.poll_one().unwrap().wc.imm, Some(3));
    }

    #[test]
    fn foreign_receives_pass_through_untouched() {
        let (client, server) = connected_pair();
        let ring = ReceiveRing::new(&server, 2, 8).unwrap();
        // An extra receive posted outside the ring, consumed first... no:
        // the QP receive queue is FIFO, so the ring slots are consumed first.
        // Drain them, then the extra receive is next in line.
        let extra = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: u64::MAX,
                local: Sge::whole(&extra),
            })
            .unwrap();
        write_with_imm(&client, &server, 1).unwrap();
        write_with_imm(&client, &server, 2).unwrap();
        write_with_imm(&client, &server, 3).unwrap();
        assert_eq!(ring.busy_wait().unwrap().slot, Some(0));
        assert_eq!(ring.busy_wait().unwrap().slot, Some(1));
        let foreign = ring.busy_wait().unwrap();
        assert_eq!(foreign.slot, None);
        assert_eq!(foreign.wc.imm, Some(3));
        // The ring slots were auto-reposted; the foreign receive was not.
        assert_eq!(ring.posted_slots(), 2);
    }

    #[test]
    fn colliding_foreign_wr_id_passes_through_instead_of_corrupting_the_ring() {
        let (client, server) = connected_pair();
        let ring = ReceiveRing::with_manual_repost(&server, 1, 8).unwrap();
        write_with_imm(&client, &server, 1).unwrap();
        let first = ring.poll_one().unwrap();
        assert_eq!(first.slot, Some(0));
        // A caller violating the wr_id contract: a foreign receive whose
        // wr_id collides with slot 0 while the ring is drained. The
        // completion must still reach the caller (as foreign), not vanish.
        let extra = server.pd().register(8, AccessFlags::LOCAL_ONLY);
        server
            .post_recv(RecvRequest {
                wr_id: 0,
                local: Sge::whole(&extra),
            })
            .unwrap();
        write_with_imm(&client, &server, 9).unwrap();
        let colliding = ring.poll_one().unwrap();
        assert_eq!(colliding.slot, None, "drained ring cannot own this wr_id");
        assert_eq!(colliding.wc.imm, Some(9));
        // The ring state is untouched and reposting still works.
        assert_eq!(ring.posted_slots(), 0);
        ring.repost(0).unwrap();
        assert_eq!(ring.posted_slots(), 1);
    }

    #[test]
    fn zero_depth_ring_is_rejected() {
        let (_client, server) = connected_pair();
        assert!(ReceiveRing::new(&server, 0, 8).is_err());
    }

    #[test]
    fn deliver_slot_supports_out_of_order_pickup() {
        let mut state = RingState::new(3);
        state.deliver_slot(2).unwrap();
        state.deliver_slot(0).unwrap();
        // Already consumed and out-of-range slots are rejected.
        assert!(state.deliver_slot(2).is_err());
        assert!(state.deliver_slot(9).is_err());
        assert_eq!(state.posted(), 1);
        assert_eq!(state.consumed(), 2);
        state.repost(2).unwrap();
        // FIFO delivery still works around the targeted ones: 1 then 2.
        assert_eq!(state.deliver().unwrap(), 1);
        assert_eq!(state.deliver().unwrap(), 2);
    }

    /// A server endpoint with an SRQ-backed ring and `n` connected QPs
    /// drawing from it, each with `credit` flow-control credits.
    fn srq_ring(
        depth: usize,
        n: usize,
        credit: usize,
    ) -> (SharedReceiveQueue, ReceiveRing, Vec<(QueuePair, QueuePair)>) {
        let fabric = Fabric::with_defaults();
        let server_node = fabric.add_node("server");
        let server_ep = Endpoint::new(&fabric, &server_node);
        let srq = SharedReceiveQueue::new(&server_ep, depth);
        let ring = ReceiveRing::on_srq(&server_ep, &srq, depth, 8).unwrap();
        let pairs = (0..n)
            .map(|i| {
                let client_node = fabric.add_node(&format!("client-{i}"));
                let client = QueuePair::new(&Endpoint::new(&fabric, &client_node));
                let server = QueuePair::new(&server_ep);
                QueuePair::connect_pair(&client, &server).unwrap();
                server.attach_srq(&srq, credit);
                (client, server)
            })
            .collect();
        (srq, ring, pairs)
    }

    #[test]
    fn srq_ring_serves_multiple_qps_from_shared_slots() {
        let (srq, ring, pairs) = srq_ring(4, 2, 2);
        assert_eq!(srq.posted(), 4);
        // More messages than slots-per-QP: auto repost keeps the shared pool
        // full, and both connections are served from the same 4 slots.
        for round in 0..3u32 {
            for (i, (client, server)) in pairs.iter().enumerate() {
                let imm = round * 10 + i as u32;
                write_with_imm(client, server, imm).unwrap();
                let raw = server.recv_cq().poll_one().unwrap();
                let c = ring.adopt(raw);
                assert!(c.slot.is_some(), "round {round} qp {i}");
                assert_eq!(c.wc.imm, Some(imm));
            }
        }
        assert_eq!(srq.posted(), 4);
        assert_eq!(srq.stats().in_flight, 0);
        assert!(srq.stats().depth_high_watermark >= 1);
    }

    #[test]
    fn srq_ring_adopts_completions_out_of_slot_order() {
        let (_srq, ring, pairs) = srq_ring(4, 2, 2);
        // Both clients send before any pickup: slots 0 and 1 are consumed.
        write_with_imm(&pairs[0].0, &pairs[0].1, 100).unwrap();
        write_with_imm(&pairs[1].0, &pairs[1].1, 200).unwrap();
        // Drain the *second* QP's CQ first: slot 1 is adopted before slot 0.
        let second = ring.adopt(pairs[1].1.recv_cq().poll_one().unwrap());
        assert_eq!(second.slot, Some(1));
        let first = ring.adopt(pairs[0].1.recv_cq().poll_one().unwrap());
        assert_eq!(first.slot, Some(0));
    }

    #[test]
    fn srq_credits_contain_a_flooding_connection() {
        let (_srq, ring, pairs) = srq_ring(4, 2, 1);
        // QP 0 floods: its single credit allows one in-flight message, the
        // second is refused even though the shared pool still has slots...
        write_with_imm(&pairs[0].0, &pairs[0].1, 1).unwrap();
        assert_eq!(
            write_with_imm(&pairs[0].0, &pairs[0].1, 2).unwrap_err(),
            FabricError::ReceiverNotReady
        );
        // ...which the neighbour happily uses.
        write_with_imm(&pairs[1].0, &pairs[1].1, 3).unwrap();
        // Adopting QP 0's completion releases its credit.
        ring.adopt(pairs[0].1.recv_cq().poll_one().unwrap());
        write_with_imm(&pairs[0].0, &pairs[0].1, 4).unwrap();
    }

    #[test]
    fn srq_attached_qp_rejects_private_post_recv() {
        let (_srq, _ring, pairs) = srq_ring(2, 1, 1);
        let extra = pairs[0].1.pd().register(8, AccessFlags::LOCAL_ONLY);
        let err = pairs[0]
            .1
            .post_recv(RecvRequest {
                wr_id: u64::MAX,
                local: Sge::whole(&extra),
            })
            .unwrap_err();
        assert!(matches!(err, FabricError::UnsupportedOperation(_)));
    }

    #[test]
    fn slot_bytes_expose_sent_data() {
        let (client, server) = connected_pair();
        let ring = ReceiveRing::with_manual_repost(&server, 1, 16).unwrap();
        let src = client
            .pd()
            .register_from(b"ring-slot".to_vec(), AccessFlags::LOCAL_ONLY);
        client
            .post_send(
                1,
                SendRequest::Send {
                    local: Sge::whole(&src),
                },
                false,
            )
            .unwrap();
        let c = ring.busy_wait().unwrap();
        let slot = c.slot.unwrap();
        assert_eq!(&ring.slot_bytes(slot).unwrap()[..9], b"ring-slot");
        ring.repost(slot).unwrap();
    }

    proptest::proptest! {
        // Arbitrary interleavings of deliver/repost never lose a slot: every
        // slot is always exactly posted or consumed, and the totals add up
        // to the depth.
        #[test]
        fn prop_ring_never_loses_buffers(depth in 1usize..16, ops: Vec<u8>) {
            let mut state = RingState::new(depth);
            let mut delivered: Vec<usize> = Vec::new();
            for op in ops {
                if op % 2 == 0 {
                    match state.deliver() {
                        Ok(slot) => delivered.push(slot),
                        Err(e) => {
                            // Only an empty ring may reject a delivery.
                            proptest::prop_assert_eq!(e, FabricError::ReceiverNotReady);
                            proptest::prop_assert_eq!(state.posted(), 0);
                        }
                    }
                } else if let Some(slot) = delivered.pop() {
                    state.repost(slot).unwrap();
                }
                proptest::prop_assert_eq!(state.posted() + state.consumed(), depth);
                proptest::prop_assert_eq!(delivered.len(), state.consumed());
            }
        }

        // Deliveries come back in exactly the order slots were (re)posted.
        #[test]
        fn prop_ring_delivery_is_fifo(depth in 1usize..12, ops: Vec<bool>) {
            let mut state = RingState::new(depth);
            // Shadow model: a plain FIFO of slot ids.
            let mut model: std::collections::VecDeque<usize> = (0..depth).collect();
            let mut consumed: Vec<usize> = Vec::new();
            for take in ops {
                if take {
                    match (state.deliver(), model.pop_front()) {
                        (Ok(got), Some(expect)) => {
                            proptest::prop_assert_eq!(got, expect);
                            consumed.push(got);
                        }
                        (Err(_), None) => {}
                        (got, expect) => {
                            panic!("ring and model diverged: {got:?} vs {expect:?}");
                        }
                    }
                } else if let Some(slot) = consumed.first().copied() {
                    consumed.remove(0);
                    state.repost(slot).unwrap();
                    model.push_back(slot);
                }
            }
        }

        // An empty ring always rejects writes, and stays rejecting until a
        // repost; the live transport mirrors this through ReceiverNotReady.
        #[test]
        fn prop_empty_ring_rejects_until_repost(depth in 1usize..8) {
            let mut state = RingState::new(depth);
            let mut slots = Vec::new();
            for _ in 0..depth {
                slots.push(state.deliver().unwrap());
            }
            proptest::prop_assert_eq!(state.deliver().unwrap_err(), FabricError::ReceiverNotReady);
            proptest::prop_assert_eq!(state.deliver().unwrap_err(), FabricError::ReceiverNotReady);
            state.repost(slots[0]).unwrap();
            proptest::prop_assert_eq!(state.deliver().unwrap(), slots[0]);
        }
    }
}
