//! Shared receive queues: one pool of posted receives serving many QPs.
//!
//! A reliable-connected QP normally owns a private receive queue, so an
//! executor hosting `W` workers posts `W × depth` receives — receive memory
//! linear in connection count. An SRQ breaks that coupling: multiple QPs
//! attach to one queue and incoming SENDs/WRITE_WITH_IMMs consume buffers
//! from the shared pool, exactly like `ibv_create_srq` on real hardware.
//!
//! Two properties the executor dispatcher depends on:
//!
//! * **Completions stay per-QP.** The SRQ only changes where the receive
//!   *buffer* comes from; the completion still lands on the consuming QP's
//!   own receive CQ with that QP's number, so a `CqSet` sweep keeps working
//!   unchanged and per-worker billing stays attributable.
//! * **Per-QP flow-control credits.** Each attached QP may hold at most
//!   `credit` buffers in flight. A tenant flooding its connection exhausts
//!   its own credit (its posts fail with `ReceiverNotReady`, the same error
//!   a drained private queue produces) instead of draining the shared pool
//!   and starving its neighbours.

use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

use parking_lot::Mutex;
use sim_core::{SimDuration, VirtualClock};

use crate::error::{FabricError, Result};
use crate::qp::Endpoint;
use crate::verbs::RecvRequest;

#[derive(Debug, Clone, Copy)]
struct CreditState {
    limit: usize,
    in_flight: usize,
}

#[derive(Debug)]
struct SrqState {
    queue: VecDeque<RecvRequest>,
    /// Per-QP flow-control credits, keyed by `qp_num`. Ordered map so any
    /// iteration (stats, debugging) is deterministic.
    credits: BTreeMap<u32, CreditState>,
    /// Buffers handed to QPs and not yet released (summed over all QPs).
    total_in_flight: usize,
    /// Highest `total_in_flight` ever observed — how deep into the shared
    /// pool concurrent tenants actually reached.
    high_watermark: usize,
}

#[derive(Debug)]
struct SrqInner {
    max_depth: usize,
    clock: Arc<VirtualClock>,
    post_overhead: SimDuration,
    state: Mutex<SrqState>,
}

/// Counters exposed by [`SharedReceiveQueue::stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SrqStats {
    /// Configured capacity of the shared queue.
    pub max_depth: usize,
    /// Receives currently posted and waiting for messages.
    pub posted: usize,
    /// Buffers currently held by consuming QPs.
    pub in_flight: usize,
    /// Highest concurrent in-flight buffer count ever observed.
    pub depth_high_watermark: usize,
    /// Number of QPs currently attached.
    pub attached_qps: usize,
}

/// A shared receive queue multiple queue pairs draw buffers from.
///
/// Cloning is shallow: all clones view the same queue.
#[derive(Debug, Clone)]
pub struct SharedReceiveQueue {
    inner: Arc<SrqInner>,
}

impl SharedReceiveQueue {
    /// Create an SRQ of at most `max_depth` posted receives. Posting charges
    /// the owning `endpoint`'s clock with the usual `post_recv` overhead.
    pub fn new(endpoint: &Endpoint, max_depth: usize) -> SharedReceiveQueue {
        let profile = endpoint.fabric.profile();
        SharedReceiveQueue {
            inner: Arc::new(SrqInner {
                max_depth: max_depth.max(1),
                clock: Arc::clone(&endpoint.clock),
                post_overhead: profile.post_recv_overhead,
                state: Mutex::new(SrqState {
                    queue: VecDeque::new(),
                    credits: BTreeMap::new(),
                    total_in_flight: 0,
                    high_watermark: 0,
                }),
            }),
        }
    }

    /// Configured capacity.
    pub fn max_depth(&self) -> usize {
        self.inner.max_depth
    }

    /// Receives currently posted.
    pub fn posted(&self) -> usize {
        self.inner.state.lock().queue.len()
    }

    /// Post a receive into the shared pool.
    pub fn post(&self, recv: RecvRequest) -> Result<()> {
        {
            let mut state = self.inner.state.lock();
            if state.queue.len() >= self.inner.max_depth {
                return Err(FabricError::DeviceLimitExceeded {
                    limit: "shared receive queue depth",
                });
            }
            state.queue.push_back(recv);
        }
        self.inner.clock.advance(self.inner.post_overhead);
        Ok(())
    }

    /// Register `qp_num` as a consumer with a flow-control budget of
    /// `credit` concurrently held buffers. Re-attaching resets the budget.
    pub fn attach(&self, qp_num: u32, credit: usize) {
        self.inner.state.lock().credits.insert(
            qp_num,
            CreditState {
                limit: credit.max(1),
                in_flight: 0,
            },
        );
    }

    /// Remove `qp_num`'s credit entry (its in-flight buffers are forgotten —
    /// call only after the QP's completions have drained).
    pub fn detach(&self, qp_num: u32) {
        let mut state = self.inner.state.lock();
        if let Some(credit) = state.credits.remove(&qp_num) {
            state.total_in_flight = state.total_in_flight.saturating_sub(credit.in_flight);
        }
    }

    /// Consume the oldest posted receive on behalf of `qp_num`, honouring
    /// its credit. Called by the transport when a message arrives on an
    /// attached QP. QPs without a credit entry are treated as uncapped.
    pub(crate) fn pop_for(&self, qp_num: u32) -> Result<RecvRequest> {
        let mut state = self.inner.state.lock();
        if let Some(credit) = state.credits.get(&qp_num) {
            if credit.in_flight >= credit.limit {
                return Err(FabricError::ReceiverNotReady);
            }
        }
        let recv = state
            .queue
            .pop_front()
            .ok_or(FabricError::ReceiverNotReady)?;
        if let Some(credit) = state.credits.get_mut(&qp_num) {
            credit.in_flight += 1;
        }
        state.total_in_flight += 1;
        state.high_watermark = state.high_watermark.max(state.total_in_flight);
        Ok(recv)
    }

    /// Whether `qp_num` has exhausted its flow-control credit — the
    /// condition that must fail a post immediately, as opposed to the queue
    /// being momentarily empty, which the sending NIC absorbs with RNR
    /// retransmits.
    pub(crate) fn over_credit(&self, qp_num: u32) -> bool {
        let state = self.inner.state.lock();
        state
            .credits
            .get(&qp_num)
            .is_some_and(|c| c.in_flight >= c.limit)
    }

    /// Return one credit to `qp_num` once its completion has been picked up
    /// and the buffer is free to repost.
    pub fn release(&self, qp_num: u32) {
        let mut state = self.inner.state.lock();
        if let Some(credit) = state.credits.get_mut(&qp_num) {
            credit.in_flight = credit.in_flight.saturating_sub(1);
        }
        state.total_in_flight = state.total_in_flight.saturating_sub(1);
    }

    /// Snapshot of the queue's counters.
    pub fn stats(&self) -> SrqStats {
        let state = self.inner.state.lock();
        SrqStats {
            max_depth: self.inner.max_depth,
            posted: state.queue.len(),
            in_flight: state.total_in_flight,
            depth_high_watermark: state.high_watermark,
            attached_qps: state.credits.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fabric::Fabric;
    use crate::memory::AccessFlags;
    use crate::verbs::Sge;

    fn srq(depth: usize) -> (SharedReceiveQueue, Endpoint) {
        let fabric = Fabric::with_defaults();
        let node = fabric.add_node("srq-host");
        let endpoint = Endpoint::new(&fabric, &node);
        (SharedReceiveQueue::new(&endpoint, depth), endpoint)
    }

    fn slot(endpoint: &Endpoint, wr_id: u64) -> RecvRequest {
        let region = endpoint.pd.register(8, AccessFlags::LOCAL_ONLY);
        RecvRequest {
            wr_id,
            local: Sge::whole(&region),
        }
    }

    #[test]
    fn posts_are_fifo_and_depth_bounded() {
        let (srq, ep) = srq(2);
        srq.post(slot(&ep, 0)).unwrap();
        srq.post(slot(&ep, 1)).unwrap();
        assert!(matches!(
            srq.post(slot(&ep, 2)),
            Err(FabricError::DeviceLimitExceeded { .. })
        ));
        assert_eq!(srq.pop_for(7).unwrap().wr_id, 0);
        assert_eq!(srq.pop_for(7).unwrap().wr_id, 1);
        assert_eq!(srq.pop_for(7).unwrap_err(), FabricError::ReceiverNotReady);
    }

    #[test]
    fn posting_charges_the_owner_clock() {
        let (srq, ep) = srq(4);
        let before = ep.clock.now();
        srq.post(slot(&ep, 0)).unwrap();
        assert!(ep.clock.now() > before);
    }

    #[test]
    fn credits_cap_one_consumer_without_starving_others() {
        let (srq, ep) = srq(8);
        for i in 0..8 {
            srq.post(slot(&ep, i)).unwrap();
        }
        srq.attach(1, 2);
        srq.attach(2, 2);
        // QP 1 burns its whole credit...
        srq.pop_for(1).unwrap();
        srq.pop_for(1).unwrap();
        assert_eq!(srq.pop_for(1).unwrap_err(), FabricError::ReceiverNotReady);
        // ...but QP 2 still gets buffers: the flood was contained.
        srq.pop_for(2).unwrap();
        // Releasing a credit lets QP 1 consume again.
        srq.release(1);
        srq.pop_for(1).unwrap();
        let stats = srq.stats();
        assert_eq!(stats.in_flight, 3);
        assert_eq!(stats.depth_high_watermark, 3);
        assert_eq!(stats.attached_qps, 2);
    }

    #[test]
    fn detach_forgets_in_flight_buffers() {
        let (srq, ep) = srq(4);
        srq.post(slot(&ep, 0)).unwrap();
        srq.attach(9, 4);
        srq.pop_for(9).unwrap();
        assert_eq!(srq.stats().in_flight, 1);
        srq.detach(9);
        assert_eq!(srq.stats().in_flight, 0);
        assert_eq!(srq.stats().attached_qps, 0);
    }

    proptest::proptest! {
        // No interleaving of post/pop/release loses or duplicates a buffer:
        // posted + in-flight never exceeds what was pushed, per-QP in-flight
        // never exceeds its credit, and pops drain in FIFO wr_id order.
        #[test]
        fn prop_srq_no_loss_and_credits_hold(
            depth in 1usize..16,
            credit in 1usize..6,
            ops: Vec<u8>,
        ) {
            let (srq, ep) = srq(depth);
            srq.attach(1, credit);
            srq.attach(2, credit);
            let mut next_wr: u64 = 0;
            let mut expect_fifo: std::collections::VecDeque<u64> =
                std::collections::VecDeque::new();
            let mut held: [usize; 2] = [0, 0];
            for op in ops {
                match op % 4 {
                    0 => {
                        if srq.post(slot(&ep, next_wr)).is_ok() {
                            expect_fifo.push_back(next_wr);
                            next_wr += 1;
                        } else {
                            proptest::prop_assert_eq!(srq.posted(), depth);
                        }
                    }
                    1 | 2 => {
                        let qp = (op % 4) as u32;
                        match srq.pop_for(qp) {
                            Ok(recv) => {
                                let expect = expect_fifo.pop_front().unwrap();
                                proptest::prop_assert_eq!(recv.wr_id, expect);
                                held[qp as usize - 1] += 1;
                            }
                            Err(e) => {
                                proptest::prop_assert_eq!(e, FabricError::ReceiverNotReady);
                                proptest::prop_assert!(
                                    expect_fifo.is_empty() || held[qp as usize - 1] >= credit
                                );
                            }
                        }
                    }
                    _ => {
                        let qp = 1 + (op as u32 % 2);
                        if held[qp as usize - 1] > 0 {
                            srq.release(qp);
                            held[qp as usize - 1] -= 1;
                        }
                    }
                }
                let stats = srq.stats();
                proptest::prop_assert!(held[0] <= credit && held[1] <= credit);
                proptest::prop_assert_eq!(stats.in_flight, held[0] + held[1]);
                proptest::prop_assert_eq!(stats.posted, expect_fifo.len());
            }
        }
    }
}
