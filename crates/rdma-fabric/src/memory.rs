//! Registered memory regions.
//!
//! An RDMA NIC can only access memory that has been *registered* with a
//! protection domain: registration pins the pages and hands out a local key
//! (`lkey`) and a remote key (`rkey`). A peer that knows the region's remote
//! address and rkey can read/write/atomically update it without involving the
//! owner's CPU — this is the mechanism rFaaS uses to deliver invocation
//! payloads and results.
//!
//! In the software fabric a region is an `Arc`'d, lock-protected byte buffer.
//! Page alignment is emulated so the cost model can charge the same
//! non-aligned penalty the paper's design guidelines mention.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::error::{FabricError, Result};

/// Access permissions of a registered memory region, mirroring
/// `IBV_ACCESS_*` flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessFlags {
    /// Local writes through the NIC (always needed for receives/reads).
    pub local_write: bool,
    /// Remote peers may write into the region.
    pub remote_write: bool,
    /// Remote peers may read from the region.
    pub remote_read: bool,
    /// Remote peers may perform atomics on the region.
    pub remote_atomic: bool,
}

impl AccessFlags {
    /// Only local access (the default for transmit-only buffers).
    pub const LOCAL_ONLY: AccessFlags = AccessFlags {
        local_write: true,
        remote_write: false,
        remote_read: false,
        remote_atomic: false,
    };

    /// Full remote access: write, read, atomics.
    pub const REMOTE_ALL: AccessFlags = AccessFlags {
        local_write: true,
        remote_write: true,
        remote_read: true,
        remote_atomic: true,
    };

    /// Remote write access only (typical for rFaaS input buffers).
    pub const REMOTE_WRITE: AccessFlags = AccessFlags {
        local_write: true,
        remote_write: true,
        remote_read: false,
        remote_atomic: false,
    };
}

/// Simulated page size used for the alignment model (4 KiB, as on the
/// evaluation nodes).
pub const PAGE_SIZE: usize = 4096;

static NEXT_KEY: AtomicU64 = AtomicU64::new(1);

fn next_key() -> u64 {
    NEXT_KEY.fetch_add(1, Ordering::Relaxed)
}

#[derive(Debug)]
pub(crate) struct RegionInner {
    pub(crate) data: RwLock<Vec<u8>>,
    lkey: u64,
    rkey: u64,
    access: AccessFlags,
    page_aligned: bool,
}

/// A registered memory region.
///
/// Cloning the handle is cheap and refers to the same underlying buffer, the
/// same way multiple ibverbs objects can refer to one registration.
#[derive(Debug, Clone)]
pub struct MemoryRegion {
    pub(crate) inner: Arc<RegionInner>,
}

impl MemoryRegion {
    /// Register a zero-initialised region of `len` bytes.
    pub fn zeroed(len: usize, access: AccessFlags) -> MemoryRegion {
        Self::from_vec(vec![0u8; len], access)
    }

    /// Register a region initialised from `data`.
    pub fn from_vec(data: Vec<u8>, access: AccessFlags) -> MemoryRegion {
        // The simulation treats every registration as page-aligned: rFaaS's
        // allocator always allocates page-aligned buffers (Sec. IV-B).
        MemoryRegion {
            inner: Arc::new(RegionInner {
                data: RwLock::new(data),
                lkey: next_key(),
                rkey: next_key(),
                access,
                page_aligned: true,
            }),
        }
    }

    /// Length of the region in bytes.
    pub fn len(&self) -> usize {
        self.inner.data.read().len()
    }

    /// Whether the region is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Local key of the registration.
    pub fn lkey(&self) -> u64 {
        self.inner.lkey
    }

    /// Remote key of the registration.
    pub fn rkey(&self) -> u64 {
        self.inner.rkey
    }

    /// Access flags granted at registration time.
    pub fn access(&self) -> AccessFlags {
        self.inner.access
    }

    /// Whether the underlying buffer is page aligned (always true for buffers
    /// produced by the rFaaS allocator).
    pub fn is_page_aligned(&self) -> bool {
        self.inner.page_aligned
    }

    /// Copy of the bytes in `[offset, offset + len)`.
    pub fn read(&self, offset: usize, len: usize) -> Result<Vec<u8>> {
        let data = self.inner.data.read();
        check_bounds(offset, len, data.len())?;
        Ok(data[offset..offset + len].to_vec())
    }

    /// Copy of the full contents.
    pub fn read_all(&self) -> Vec<u8> {
        self.inner.data.read().clone()
    }

    /// Overwrite `[offset, offset + src.len())` with `src`.
    pub fn write(&self, offset: usize, src: &[u8]) -> Result<()> {
        let mut data = self.inner.data.write();
        check_bounds(offset, src.len(), data.len())?;
        data[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }

    /// Run `f` over an immutable view of the region.
    pub fn with_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.inner.data.read())
    }

    /// Run `f` over a mutable view of the region.
    pub fn with_bytes_mut<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.inner.data.write())
    }

    /// Read an 8-byte little-endian word (used by atomics and headers).
    pub fn read_u64(&self, offset: usize) -> Result<u64> {
        let bytes = self.read(offset, 8)?;
        Ok(u64::from_le_bytes(
            bytes.try_into().expect("read returned 8 bytes"),
        ))
    }

    /// Write an 8-byte little-endian word.
    pub fn write_u64(&self, offset: usize, value: u64) -> Result<()> {
        self.write(offset, &value.to_le_bytes())
    }

    /// Handle that a remote peer can use to address this region.
    pub fn remote_handle(&self) -> RemoteMemoryHandle {
        RemoteMemoryHandle {
            rkey: self.rkey(),
            offset: 0,
            len: self.len(),
        }
    }

    /// Handle covering a sub-range of this region.
    pub fn remote_handle_range(&self, offset: usize, len: usize) -> Result<RemoteMemoryHandle> {
        check_bounds(offset, len, self.len())?;
        Ok(RemoteMemoryHandle {
            rkey: self.rkey(),
            offset,
            len,
        })
    }

    /// Whether two handles refer to the same registration.
    pub fn same_region(&self, other: &MemoryRegion) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

fn check_bounds(offset: usize, len: usize, region_len: usize) -> Result<()> {
    if offset
        .checked_add(len)
        .map(|end| end <= region_len)
        .unwrap_or(false)
    {
        Ok(())
    } else {
        Err(FabricError::LocalAccessOutOfBounds {
            offset,
            len,
            region_len,
        })
    }
}

/// Address + rkey of a (range of a) remote region, as exchanged between rFaaS
/// clients and executors in the connection handshake and in the 12-byte
/// invocation header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemoteMemoryHandle {
    /// Remote key of the target registration.
    pub rkey: u64,
    /// Byte offset within the registration.
    pub offset: usize,
    /// Length of the addressed range.
    pub len: usize,
}

impl RemoteMemoryHandle {
    /// Narrow the handle to a sub-range (relative to this handle's offset).
    pub fn slice(&self, offset: usize, len: usize) -> RemoteMemoryHandle {
        RemoteMemoryHandle {
            rkey: self.rkey,
            offset: self.offset + offset,
            len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_assigns_unique_keys() {
        let a = MemoryRegion::zeroed(16, AccessFlags::REMOTE_ALL);
        let b = MemoryRegion::zeroed(16, AccessFlags::REMOTE_ALL);
        assert_ne!(a.rkey(), b.rkey());
        assert_ne!(a.lkey(), b.lkey());
        assert_ne!(a.lkey(), a.rkey());
    }

    #[test]
    fn read_write_round_trip() {
        let mr = MemoryRegion::zeroed(32, AccessFlags::REMOTE_WRITE);
        mr.write(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(mr.read(4, 4).unwrap(), vec![1, 2, 3, 4]);
        assert_eq!(mr.read(0, 4).unwrap(), vec![0, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_access_is_rejected() {
        let mr = MemoryRegion::zeroed(8, AccessFlags::LOCAL_ONLY);
        assert!(matches!(
            mr.read(4, 8),
            Err(FabricError::LocalAccessOutOfBounds { .. })
        ));
        assert!(mr.write(8, &[1]).is_err());
        // Overflowing offsets must not panic.
        assert!(mr.read(usize::MAX, 2).is_err());
    }

    #[test]
    fn u64_helpers() {
        let mr = MemoryRegion::zeroed(16, AccessFlags::REMOTE_ALL);
        mr.write_u64(8, 0xDEAD_BEEF_1234_5678).unwrap();
        assert_eq!(mr.read_u64(8).unwrap(), 0xDEAD_BEEF_1234_5678);
        assert!(mr.read_u64(1).is_ok()); // unaligned reads allowed locally
        assert!(mr.read_u64(12).is_err()); // out of bounds
    }

    #[test]
    fn clones_share_storage() {
        let a = MemoryRegion::zeroed(8, AccessFlags::REMOTE_ALL);
        let b = a.clone();
        a.write(0, &[7]).unwrap();
        assert_eq!(b.read(0, 1).unwrap(), vec![7]);
        assert!(a.same_region(&b));
    }

    #[test]
    fn remote_handles_cover_ranges() {
        let mr = MemoryRegion::zeroed(100, AccessFlags::REMOTE_ALL);
        let h = mr.remote_handle();
        assert_eq!(h.len, 100);
        assert_eq!(h.offset, 0);
        let sub = mr.remote_handle_range(10, 20).unwrap();
        assert_eq!(sub.offset, 10);
        assert_eq!(sub.len, 20);
        assert!(mr.remote_handle_range(90, 20).is_err());
        let sliced = h.slice(5, 10);
        assert_eq!(sliced.offset, 5);
        assert_eq!(sliced.len, 10);
        assert_eq!(sliced.rkey, mr.rkey());
    }

    #[test]
    fn with_bytes_mut_mutates_in_place() {
        let mr = MemoryRegion::from_vec(vec![1, 2, 3], AccessFlags::LOCAL_ONLY);
        mr.with_bytes_mut(|b| b.reverse());
        assert_eq!(mr.read_all(), vec![3, 2, 1]);
        let sum: u32 = mr.with_bytes(|b| b.iter().map(|&x| x as u32).sum());
        assert_eq!(sum, 6);
    }

    #[test]
    fn access_flag_presets() {
        const { assert!(AccessFlags::REMOTE_ALL.remote_atomic) }
        const { assert!(!AccessFlags::REMOTE_WRITE.remote_read) }
        const { assert!(!AccessFlags::LOCAL_ONLY.remote_write) }
    }
}
