//! Connection pooling: warmth tracking for reliable connections.
//!
//! Establishing an RC connection costs the full `connection_setup` budget
//! (QP attribute exchange, path resolution, state-machine ladder). Once a
//! client has talked to a remote once, re-connecting is much cheaper: path
//! records, pinned pages and exchanged attributes survive — the
//! `warm_connection_setup` tier of the NIC profile. The pool tracks that
//! warmth per remote key: returning a connection parks a warmth token, a
//! later lease of the same key redeems it and the connection manager charges
//! the warm tier instead of the full handshake
//! ([`crate::cm::connect_pooled`]).
//!
//! Tokens — not live QPs — are pooled because simulated workers bind fresh
//! per-lease addresses; what survives lease churn is the peer *node* state,
//! which is exactly what the key names.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use sim_core::{SimDuration, SimTime};

/// Counters exposed by [`ConnectionPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Leases satisfied by a parked warmth token (warm re-connect).
    pub hits: u64,
    /// Leases that found no token (full first-contact handshake).
    pub misses: u64,
    /// Tokens dropped by capacity or idle eviction.
    pub evictions: u64,
    /// Tokens returned to the pool.
    pub returned: u64,
}

#[derive(Debug)]
struct PoolInner {
    /// Parked warmth tokens per remote key; each token records when it was
    /// parked so idle eviction can age them out. Ordered map: eviction sweeps
    /// iterate deterministically.
    idle: BTreeMap<String, VecDeque<SimTime>>,
    max_idle_per_key: usize,
    stats: PoolStats,
}

/// A pool of connection-warmth tokens keyed by remote address.
///
/// Cloning is shallow: all clones share the same pool, which is how several
/// sessions of one client process share warmth.
#[derive(Debug, Clone)]
pub struct ConnectionPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl Default for ConnectionPool {
    fn default() -> Self {
        ConnectionPool::new()
    }
}

impl ConnectionPool {
    /// A pool keeping at most 64 idle tokens per remote key.
    pub fn new() -> ConnectionPool {
        ConnectionPool::with_capacity(64)
    }

    /// A pool keeping at most `max_idle_per_key` idle tokens per remote key.
    pub fn with_capacity(max_idle_per_key: usize) -> ConnectionPool {
        ConnectionPool {
            inner: Arc::new(Mutex::new(PoolInner {
                idle: BTreeMap::new(),
                max_idle_per_key: max_idle_per_key.max(1),
                stats: PoolStats::default(),
            })),
        }
    }

    /// Try to redeem a warmth token for `key`. `true` means the caller may
    /// establish the connection at the warm tier; `false` means first
    /// contact, full handshake. Either way a counter records the outcome.
    pub fn lease(&self, key: &str) -> bool {
        let mut inner = self.inner.lock();
        let hit = match inner.idle.get_mut(key) {
            Some(tokens) => tokens.pop_front().is_some(),
            None => false,
        };
        if hit {
            inner.stats.hits += 1;
            if inner.idle.get(key).is_some_and(|t| t.is_empty()) {
                inner.idle.remove(key);
            }
        } else {
            inner.stats.misses += 1;
        }
        hit
    }

    /// Park a warmth token for `key` at `now` (the connection was torn down
    /// but the remote stays warm). Oldest token is evicted past capacity.
    pub fn release(&self, key: &str, now: SimTime) {
        let mut inner = self.inner.lock();
        inner.stats.returned += 1;
        let cap = inner.max_idle_per_key;
        let tokens = inner.idle.entry(key.to_string()).or_default();
        tokens.push_back(now);
        if tokens.len() > cap {
            tokens.pop_front();
            inner.stats.evictions += 1;
        }
    }

    /// Drop tokens parked longer than `max_idle` before `now`; returns how
    /// many were evicted.
    pub fn evict_idle(&self, now: SimTime, max_idle: SimDuration) -> usize {
        let mut inner = self.inner.lock();
        let mut evicted = 0;
        inner.idle.retain(|_, tokens| {
            let before = tokens.len();
            tokens.retain(|parked| now.saturating_since(*parked) <= max_idle);
            evicted += before - tokens.len();
            !tokens.is_empty()
        });
        inner.stats.evictions += evicted as u64;
        evicted
    }

    /// Total idle tokens across all keys.
    pub fn idle_count(&self) -> usize {
        self.inner.lock().idle.values().map(|t| t.len()).sum()
    }

    /// Idle tokens parked for `key`.
    pub fn idle_for(&self, key: &str) -> usize {
        self.inner.lock().idle.get(key).map_or(0, |t| t.len())
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_contact_misses_then_reuse_hits() {
        let pool = ConnectionPool::new();
        assert!(!pool.lease("exec-a"));
        pool.release("exec-a", SimTime::from_secs(1));
        assert!(pool.lease("exec-a"));
        // The token was consumed: a third lease is a miss again.
        assert!(!pool.lease("exec-a"));
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses, stats.returned), (1, 2, 1));
    }

    #[test]
    fn keys_are_independent() {
        let pool = ConnectionPool::new();
        pool.release("exec-a", SimTime::ZERO);
        assert!(!pool.lease("exec-b"));
        assert!(pool.lease("exec-a"));
        assert_eq!(pool.idle_count(), 0);
    }

    #[test]
    fn capacity_evicts_oldest_tokens() {
        let pool = ConnectionPool::with_capacity(2);
        for s in 0..3 {
            pool.release("k", SimTime::from_secs(s));
        }
        assert_eq!(pool.idle_for("k"), 2);
        assert_eq!(pool.stats().evictions, 1);
    }

    #[test]
    fn idle_eviction_ages_tokens_out() {
        let pool = ConnectionPool::new();
        pool.release("old", SimTime::from_secs(0));
        pool.release("new", SimTime::from_secs(90));
        let evicted = pool.evict_idle(SimTime::from_secs(100), SimDuration::from_secs(60));
        assert_eq!(evicted, 1);
        assert_eq!(pool.idle_for("old"), 0);
        assert_eq!(pool.idle_for("new"), 1);
        // Evicted warmth means the next contact is a miss again.
        assert!(!pool.lease("old"));
        assert!(pool.lease("new"));
    }

    #[test]
    fn shared_clones_see_one_pool() {
        let pool = ConnectionPool::new();
        let clone = pool.clone();
        pool.release("k", SimTime::ZERO);
        assert!(clone.lease("k"));
        assert_eq!(pool.stats().hits, 1);
    }

    proptest::proptest! {
        // Lease/release conservation: hits never exceed returns, the idle
        // count equals returns minus hits minus evictions, and a lease after
        // a release of the same key (with no interleaved lease) always hits.
        #[test]
        fn prop_pool_lease_return_conserves_tokens(ops: Vec<(bool, u8)>) {
            let pool = ConnectionPool::with_capacity(4);
            let mut t = 0u64;
            for (is_release, key) in ops {
                let key = format!("k{}", key % 3);
                if is_release {
                    t += 1;
                    pool.release(&key, SimTime::from_secs(t));
                } else {
                    pool.lease(&key);
                }
                let stats = pool.stats();
                proptest::prop_assert!(stats.hits <= stats.returned);
                proptest::prop_assert_eq!(
                    pool.idle_count() as u64,
                    stats.returned - stats.hits - stats.evictions
                );
            }
        }

        // A release immediately redeemed is always a hit, for any prior state.
        #[test]
        fn prop_pool_release_then_lease_hits(prior: Vec<u8>, key in 0u8..3) {
            let pool = ConnectionPool::with_capacity(4);
            for (i, k) in prior.iter().enumerate() {
                if i % 2 == 0 {
                    pool.release(&format!("k{}", k % 3), SimTime::from_secs(i as u64));
                } else {
                    pool.lease(&format!("k{}", k % 3));
                }
            }
            let key = format!("k{key}");
            pool.release(&key, SimTime::from_secs(1_000));
            proptest::prop_assert!(pool.lease(&key));
        }
    }
}
