//! Code packages and registries.
//!
//! Functions are deployed as *code packages*: a named bundle of functions
//! plus metadata (binary size, required image). Packages are pushed to a
//! [`FunctionRegistry`] (the paper's Docker registry of enriched executor
//! images, Sec. IV-A); executors pull the package during a cold start and the
//! pull cost depends on the package and image sizes.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use sim_core::SimDuration;

use crate::function::SharedFunction;

/// A deployable bundle of functions sharing one sandbox image.
#[derive(Debug, Clone)]
pub struct CodePackage {
    name: String,
    functions: Vec<SharedFunction>,
    binary_bytes: usize,
    image: String,
}

impl CodePackage {
    /// Create a package. `binary_bytes` is the size of the compiled shared
    /// library (the paper's no-op library is 7.88 kB).
    pub fn new(name: &str, image: &str, binary_bytes: usize) -> CodePackage {
        CodePackage {
            name: name.to_string(),
            functions: Vec::new(),
            binary_bytes,
            image: image.to_string(),
        }
    }

    /// Package with the paper's default executor image and no-op library size.
    pub fn minimal(name: &str) -> CodePackage {
        CodePackage::new(name, "ubuntu:20.04", 7_880)
    }

    /// Add a function to the package (builder style).
    pub fn with_function(mut self, function: SharedFunction) -> CodePackage {
        self.functions.push(function);
        self
    }

    /// Package name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Container image the package executes in.
    pub fn image(&self) -> &str {
        &self.image
    }

    /// Compiled code size in bytes.
    pub fn binary_bytes(&self) -> usize {
        self.binary_bytes
    }

    /// All functions in the package, in registration order. The index of a
    /// function in this list is the *function index* carried in the RDMA
    /// immediate value of an invocation.
    pub fn functions(&self) -> &[SharedFunction] {
        &self.functions
    }

    /// Look up a function by its index.
    pub fn function_by_index(&self, index: usize) -> Option<&SharedFunction> {
        self.functions.get(index)
    }

    /// Look up a function (and its index) by name.
    pub fn function_by_name(&self, name: &str) -> Option<(usize, &SharedFunction)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name() == name)
    }
}

/// A registry of deployed code packages (one per tenant namespace).
#[derive(Debug, Default, Clone)]
pub struct FunctionRegistry {
    packages: Arc<RwLock<HashMap<String, CodePackage>>>,
}

impl FunctionRegistry {
    /// An empty registry.
    pub fn new() -> FunctionRegistry {
        FunctionRegistry::default()
    }

    /// Deploy (or replace) a package.
    pub fn deploy(&self, package: CodePackage) {
        self.packages
            .write()
            .insert(package.name().to_string(), package);
    }

    /// Fetch a deployed package by name.
    pub fn fetch(&self, name: &str) -> Option<CodePackage> {
        self.packages.read().get(name).cloned()
    }

    /// Remove a package; returns whether it existed.
    pub fn undeploy(&self, name: &str) -> bool {
        self.packages.write().remove(name).is_some()
    }

    /// Number of deployed packages.
    pub fn len(&self) -> usize {
        self.packages.read().len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.packages.read().is_empty()
    }

    /// Cost of transferring a package's code to an executor over the
    /// management (TCP) network during a cold start.
    pub fn code_submission_cost(&self, name: &str) -> Option<SimDuration> {
        let packages = self.packages.read();
        let package = packages.get(name)?;
        // ~1 GB/s effective code push rate plus a fixed control exchange.
        Some(
            SimDuration::from_millis(2)
                + SimDuration::from_secs_f64(package.binary_bytes() as f64 / 1.0e9),
        )
    }
}

/// Docker image metadata used by the cold-start cost model.
#[derive(Debug, Clone)]
pub struct ImageInfo {
    /// Image name (e.g. `ubuntu:20.04`).
    pub name: String,
    /// Compressed image size in bytes.
    pub size_bytes: u64,
}

/// A registry of container images with pull-cost modelling.
#[derive(Debug, Clone)]
pub struct ImageRegistry {
    images: Arc<RwLock<HashMap<String, ImageInfo>>>,
    /// Images already present in a node-local cache do not pay the pull cost;
    /// the cache is global in the simulation (all spot executors share a
    /// warmed node-local registry mirror, as the paper assumes).
    cached: Arc<RwLock<HashMap<String, bool>>>,
    pull_bytes_per_sec: f64,
}

impl Default for ImageRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ImageRegistry {
    /// A registry pre-populated with the evaluation image.
    pub fn new() -> ImageRegistry {
        let registry = ImageRegistry {
            images: Arc::new(RwLock::new(HashMap::new())),
            cached: Arc::new(RwLock::new(HashMap::new())),
            pull_bytes_per_sec: 250.0e6,
        };
        registry.push(ImageInfo {
            name: "ubuntu:20.04".to_string(),
            size_bytes: 73 * 1024 * 1024,
        });
        registry.mark_cached("ubuntu:20.04");
        registry
    }

    /// Publish an image.
    pub fn push(&self, image: ImageInfo) {
        self.images.write().insert(image.name.clone(), image);
    }

    /// Mark an image as present in the node-local cache.
    pub fn mark_cached(&self, name: &str) {
        self.cached.write().insert(name.to_string(), true);
    }

    /// Whether the image is cached locally.
    pub fn is_cached(&self, name: &str) -> bool {
        self.cached.read().get(name).copied().unwrap_or(false)
    }

    /// Image metadata.
    pub fn info(&self, name: &str) -> Option<ImageInfo> {
        self.images.read().get(name).cloned()
    }

    /// Cost of making the image available on a node: zero if cached, a pull
    /// over the registry link otherwise (and the image becomes cached).
    pub fn pull_cost(&self, name: &str) -> SimDuration {
        if self.is_cached(name) {
            return SimDuration::ZERO;
        }
        let size = self
            .info(name)
            .map(|i| i.size_bytes)
            .unwrap_or(100 * 1024 * 1024);
        self.mark_cached(name);
        SimDuration::from_secs_f64(size as f64 / self.pull_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::{echo_function, zeros_function};

    #[test]
    fn package_indexing_matches_registration_order() {
        let pkg = CodePackage::minimal("bench")
            .with_function(echo_function())
            .with_function(zeros_function(8));
        assert_eq!(pkg.functions().len(), 2);
        assert_eq!(pkg.function_by_index(0).unwrap().name(), "echo");
        assert_eq!(pkg.function_by_index(1).unwrap().name(), "zeros");
        assert!(pkg.function_by_index(2).is_none());
        let (idx, f) = pkg.function_by_name("zeros").unwrap();
        assert_eq!(idx, 1);
        assert_eq!(f.name(), "zeros");
        assert!(pkg.function_by_name("missing").is_none());
    }

    #[test]
    fn minimal_package_matches_paper_metadata() {
        let pkg = CodePackage::minimal("noop");
        assert_eq!(pkg.binary_bytes(), 7_880);
        assert_eq!(pkg.image(), "ubuntu:20.04");
    }

    #[test]
    fn registry_deploy_fetch_undeploy() {
        let reg = FunctionRegistry::new();
        assert!(reg.is_empty());
        reg.deploy(CodePackage::minimal("a").with_function(echo_function()));
        reg.deploy(CodePackage::minimal("b"));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.fetch("a").unwrap().functions().len(), 1);
        assert!(reg.fetch("missing").is_none());
        assert!(reg.undeploy("b"));
        assert!(!reg.undeploy("b"));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn code_submission_cost_is_single_digit_milliseconds() {
        let reg = FunctionRegistry::new();
        reg.deploy(CodePackage::minimal("noop"));
        let cost = reg.code_submission_cost("noop").unwrap();
        // The paper reports single-digit milliseconds for code submission.
        assert!(cost.as_millis_f64() < 10.0);
        assert!(reg.code_submission_cost("missing").is_none());
    }

    #[test]
    fn image_pull_cost_is_zero_when_cached() {
        let reg = ImageRegistry::new();
        assert!(reg.is_cached("ubuntu:20.04"));
        assert!(reg.pull_cost("ubuntu:20.04").is_zero());
    }

    #[test]
    fn uncached_image_pull_pays_transfer_and_then_caches() {
        let reg = ImageRegistry::new();
        reg.push(ImageInfo {
            name: "pytorch:1.9".into(),
            size_bytes: 500 * 1024 * 1024,
        });
        assert!(!reg.is_cached("pytorch:1.9"));
        let first = reg.pull_cost("pytorch:1.9");
        assert!(first.as_secs_f64() > 1.0);
        let second = reg.pull_cost("pytorch:1.9");
        assert!(second.is_zero());
    }

    #[test]
    fn unknown_image_uses_default_size() {
        let reg = ImageRegistry::new();
        let cost = reg.pull_cost("mystery:latest");
        assert!(cost.as_secs_f64() > 0.1);
    }
}
