//! Execution sandboxes and function code packages.
//!
//! rFaaS executes user functions inside isolated sandboxes — bare-metal
//! processes for trusted single-tenant deployments, Docker containers with
//! SR-IOV passthrough for multi-tenant clusters, and (by the paper's
//! modularity argument, Sec. III-F) Singularity or microVMs. The paper's cold
//! start measurements (Fig. 9) are dominated by sandbox initialisation, so
//! this crate models the lifecycle costs, while the functions themselves are
//! *real Rust code* registered behind the paper's `f(in, size, out)` ABI.
//!
//! * [`function`] — the function ABI, code packages and built-in functions,
//! * [`registry`] — function/code registries and the Docker image registry,
//! * [`sandbox`] — sandbox types, lifecycle state machine and cost model,
//! * [`snapshot`] — parent snapshots and page-fault accounting for remote fork,
//! * [`warm_pool`] — pre-warmed fork parents pooled per sandbox type/package.

pub mod function;
pub mod registry;
pub mod sandbox;
pub mod snapshot;
pub mod warm_pool;

pub use function::{
    echo_function, failing_function, zeros_function, FunctionError, FunctionOutcome, NoState,
    RemoteFunction, SharedFunction, StateAccess,
};
pub use registry::{CodePackage, FunctionRegistry, ImageInfo, ImageRegistry};
pub use sandbox::{Sandbox, SandboxProfile, SandboxState, SandboxType, SpawnBreakdown};
pub use snapshot::{FaultTracker, SandboxSnapshot, EXECUTOR_RESIDENT_BYTES, SNAPSHOT_PAGE_BYTES};
pub use warm_pool::{WarmParent, WarmPool, WarmPoolStats};
