//! Sandbox types, lifecycle and the cold-start cost model.
//!
//! A sandbox is the isolation boundary around one executor process. The paper
//! evaluates bare-metal processes and Docker containers with SR-IOV (Fig. 9)
//! and argues Singularity/microVMs slot in the same way (Sec. III-F). Cold
//! start cost is dominated by spawning the sandbox and its worker threads;
//! this module provides the per-type cost breakdown that the rFaaS allocator
//! charges when it creates an executor.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

use crate::registry::{CodePackage, ImageRegistry};

/// The isolation technology wrapping an executor process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SandboxType {
    /// A plain Linux process pinned to the leased cores (trusted tenants).
    BareMetal,
    /// A Docker container using an SR-IOV virtual function for RDMA.
    Docker,
    /// An HPC Singularity container (no daemon, image already unpacked).
    Singularity,
    /// A Firecracker-style microVM with a para-virtualised RDMA device.
    MicroVm,
}

impl SandboxType {
    /// Whether this sandbox reaches the NIC through an SR-IOV virtual
    /// function (adds per-message overhead) rather than the physical one.
    pub fn uses_virtual_function(self) -> bool {
        !matches!(self, SandboxType::BareMetal)
    }

    /// All sandbox types, for parameter sweeps.
    pub fn all() -> [SandboxType; 4] {
        [
            SandboxType::BareMetal,
            SandboxType::Docker,
            SandboxType::Singularity,
            SandboxType::MicroVm,
        ]
    }
}

/// Cost model of one sandbox type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SandboxProfile {
    /// Which sandbox technology this profile describes.
    pub sandbox_type: SandboxType,
    /// Fixed cost of creating the sandbox (namespace/daemon/VM setup).
    pub create_cost: SimDuration,
    /// Cost of starting the executor process inside the sandbox, opening the
    /// RDMA device and registering its memory buffers.
    pub executor_start_cost: SimDuration,
    /// Additional cost per worker thread (thread creation, QP + CQ setup,
    /// buffer registration, core pinning).
    pub per_worker_cost: SimDuration,
    /// Cost of tearing the sandbox down when the lease ends.
    pub teardown_cost: SimDuration,
    /// Control-plane cost of forking a child from a warm parent's snapshot
    /// (clone the process skeleton and QP metadata; pages come later, faulted
    /// over RDMA). Microseconds, not milliseconds — the point of the fork
    /// tier.
    pub fork_cost: SimDuration,
}

impl SandboxProfile {
    /// Cost profile for the given sandbox type, calibrated to Fig. 9: a
    /// bare-metal executor spawns in tens of milliseconds, a Docker container
    /// with the SR-IOV plugin needs ~2.7 s.
    pub fn for_type(sandbox_type: SandboxType) -> SandboxProfile {
        match sandbox_type {
            SandboxType::BareMetal => SandboxProfile {
                sandbox_type,
                create_cost: SimDuration::from_millis(2),
                executor_start_cost: SimDuration::from_millis(17),
                per_worker_cost: SimDuration::from_micros(450),
                teardown_cost: SimDuration::from_millis(3),
                fork_cost: SimDuration::from_micros(18),
            },
            SandboxType::Docker => SandboxProfile {
                sandbox_type,
                create_cost: SimDuration::from_millis(1_950),
                executor_start_cost: SimDuration::from_millis(680),
                per_worker_cost: SimDuration::from_millis(1),
                teardown_cost: SimDuration::from_millis(350),
                fork_cost: SimDuration::from_micros(45),
            },
            SandboxType::Singularity => SandboxProfile {
                sandbox_type,
                create_cost: SimDuration::from_millis(120),
                executor_start_cost: SimDuration::from_millis(60),
                per_worker_cost: SimDuration::from_micros(700),
                teardown_cost: SimDuration::from_millis(25),
                fork_cost: SimDuration::from_micros(30),
            },
            SandboxType::MicroVm => SandboxProfile {
                sandbox_type,
                create_cost: SimDuration::from_millis(95),
                executor_start_cost: SimDuration::from_millis(30),
                per_worker_cost: SimDuration::from_micros(800),
                teardown_cost: SimDuration::from_millis(12),
                fork_cost: SimDuration::from_micros(22),
            },
        }
    }

    /// Total worker-spawn cost for `workers` worker threads, including the
    /// sandbox creation and executor start.
    pub fn spawn_cost(&self, workers: usize) -> SimDuration {
        self.create_cost + self.executor_start_cost + self.per_worker_cost * workers as u64
    }

    /// Setup cost of forking a child with `workers` worker threads from a
    /// warm parent. The child's worker threads re-arm inherited QP state
    /// instead of building it (a fraction of `per_worker_cost`); memory is
    /// not copied at all — pages fault in lazily over RDMA afterwards.
    pub fn fork_setup_cost(&self, workers: usize) -> SimDuration {
        self.fork_cost + SimDuration::from_micros(2) * workers as u64
    }
}

/// Per-step breakdown of spawning a sandboxed executor, matching the stacked
/// bars of Fig. 9 ("Spawn worker" is the dominant component).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpawnBreakdown {
    /// Image pull (zero when the image is cached on the node).
    pub image_pull: SimDuration,
    /// Sandbox creation (container/VM/namespace setup).
    pub sandbox_create: SimDuration,
    /// Executor process start, RDMA device open and buffer registration.
    pub executor_start: SimDuration,
    /// Worker-thread creation and per-thread RDMA resources.
    pub workers: SimDuration,
}

impl SpawnBreakdown {
    /// Total spawn time.
    pub fn total(&self) -> SimDuration {
        self.image_pull + self.sandbox_create + self.executor_start + self.workers
    }
}

/// Lifecycle state of a sandbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SandboxState {
    /// Being created (cold start in progress).
    Initializing,
    /// Executor process running, workers ready to serve invocations.
    Running,
    /// Kept warm but idle; can be resumed cheaply.
    Paused,
    /// Destroyed; resources returned to the node.
    Terminated,
}

/// One sandbox instance hosting an executor process.
#[derive(Debug, Clone)]
pub struct Sandbox {
    profile: SandboxProfile,
    state: SandboxState,
    workers: usize,
    package: Option<CodePackage>,
    memory_bytes: u64,
}

impl Sandbox {
    /// Create (cold-start) a sandbox of the given type with `workers` worker
    /// threads and `memory_bytes` of leased memory, returning the instance
    /// and the spawn cost breakdown.
    pub fn spawn(
        sandbox_type: SandboxType,
        workers: usize,
        memory_bytes: u64,
        images: &ImageRegistry,
        image: &str,
    ) -> (Sandbox, SpawnBreakdown) {
        let profile = SandboxProfile::for_type(sandbox_type);
        let image_pull = if sandbox_type == SandboxType::BareMetal {
            SimDuration::ZERO
        } else {
            images.pull_cost(image)
        };
        let breakdown = SpawnBreakdown {
            image_pull,
            sandbox_create: profile.create_cost,
            executor_start: profile.executor_start_cost,
            workers: profile.per_worker_cost * workers as u64,
        };
        (
            Sandbox {
                profile,
                state: SandboxState::Running,
                workers,
                package: None,
                memory_bytes,
            },
            breakdown,
        )
    }

    /// Fork a child from a warm parent's snapshot: the child starts running
    /// with the parent's package already loaded, paying only the µs-scale
    /// fork setup cost returned alongside — its memory pages are *not*
    /// copied; they fault in lazily over one-sided RDMA reads from the
    /// parent node (tracked by [`crate::snapshot::FaultTracker`]).
    pub fn fork_from(
        snapshot: &crate::snapshot::SandboxSnapshot,
        workers: usize,
    ) -> (Sandbox, SimDuration) {
        let profile = SandboxProfile::for_type(snapshot.sandbox_type());
        let setup = profile.fork_setup_cost(workers);
        (
            Sandbox {
                profile,
                state: SandboxState::Running,
                workers,
                package: Some(snapshot.package().clone()),
                memory_bytes: snapshot.memory_bytes(),
            },
            setup,
        )
    }

    /// Sandbox type.
    pub fn sandbox_type(&self) -> SandboxType {
        self.profile.sandbox_type
    }

    /// Lifecycle state.
    pub fn state(&self) -> SandboxState {
        self.state
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Leased memory in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// The code package currently loaded, if any.
    pub fn package(&self) -> Option<&CodePackage> {
        self.package.as_ref()
    }

    /// Load a code package into the executor (the "Submit code" step of a
    /// cold invocation). Returns the submission cost.
    pub fn load_package(&mut self, package: CodePackage) -> SimDuration {
        // Loading the shared library and resolving symbols: proportional to
        // code size with a small fixed dlopen cost.
        let cost = SimDuration::from_micros(300)
            + SimDuration::from_secs_f64(package.binary_bytes() as f64 / 2.0e9);
        self.package = Some(package);
        cost
    }

    /// Pause the sandbox (keep it warm while idle). Only a running sandbox
    /// can be paused.
    pub fn pause(&mut self) -> bool {
        if self.state == SandboxState::Running {
            self.state = SandboxState::Paused;
            true
        } else {
            false
        }
    }

    /// Resume a paused sandbox; returns the (cheap) resume cost, or `None`
    /// if the sandbox is not paused.
    pub fn resume(&mut self) -> Option<SimDuration> {
        if self.state == SandboxState::Paused {
            self.state = SandboxState::Running;
            Some(SimDuration::from_micros(150))
        } else {
            None
        }
    }

    /// Destroy the sandbox, returning the teardown cost — or `None` if it is
    /// already terminated (teardown is billed exactly once).
    pub fn terminate(&mut self) -> Option<SimDuration> {
        if self.state == SandboxState::Terminated {
            return None;
        }
        self.state = SandboxState::Terminated;
        Some(self.profile.teardown_cost)
    }

    /// Re-shape the worker-thread count when a pooled parent is resumed for
    /// a lease that asked for a different worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ImageRegistry;

    #[test]
    fn bare_metal_spawn_is_tens_of_milliseconds() {
        let images = ImageRegistry::new();
        let (_sb, breakdown) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 30, &images, "ubuntu:20.04");
        let total = breakdown.total().as_millis_f64();
        assert!((10.0..60.0).contains(&total), "bare-metal spawn {total} ms");
        assert!(breakdown.image_pull.is_zero());
    }

    #[test]
    fn docker_spawn_is_seconds_scale() {
        let images = ImageRegistry::new();
        let (_sb, breakdown) =
            Sandbox::spawn(SandboxType::Docker, 1, 1 << 30, &images, "ubuntu:20.04");
        let total = breakdown.total().as_secs_f64();
        // Paper: ~2.7 s for Docker with the SR-IOV plugin.
        assert!((2.0..3.5).contains(&total), "docker spawn {total} s");
    }

    #[test]
    fn more_workers_cost_more_but_not_linearly_dominant() {
        let images = ImageRegistry::new();
        let (_s1, b1) = Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 30, &images, "ubuntu:20.04");
        let (_s32, b32) =
            Sandbox::spawn(SandboxType::BareMetal, 32, 1 << 30, &images, "ubuntu:20.04");
        assert!(b32.total() > b1.total());
        assert!(b32.workers > b1.workers * 30);
        // Spawn is still dominated by the executor start, as in Fig. 9.
        assert!(b32.executor_start > b32.workers);
    }

    #[test]
    fn sandbox_types_ranked_by_isolation_cost() {
        let bare = SandboxProfile::for_type(SandboxType::BareMetal).spawn_cost(1);
        let singularity = SandboxProfile::for_type(SandboxType::Singularity).spawn_cost(1);
        let microvm = SandboxProfile::for_type(SandboxType::MicroVm).spawn_cost(1);
        let docker = SandboxProfile::for_type(SandboxType::Docker).spawn_cost(1);
        assert!(bare < microvm);
        assert!(microvm < singularity || singularity < docker);
        assert!(singularity < docker);
    }

    #[test]
    fn virtual_function_flag_matches_type() {
        assert!(!SandboxType::BareMetal.uses_virtual_function());
        assert!(SandboxType::Docker.uses_virtual_function());
        assert!(SandboxType::Singularity.uses_virtual_function());
        assert_eq!(SandboxType::all().len(), 4);
    }

    #[test]
    fn lifecycle_transitions() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 2, 1 << 20, &images, "ubuntu:20.04");
        assert_eq!(sb.state(), SandboxState::Running);
        assert_eq!(sb.workers(), 2);
        assert!(sb.pause());
        assert!(!sb.pause());
        assert_eq!(sb.state(), SandboxState::Paused);
        assert!(sb.resume().is_some());
        assert!(sb.resume().is_none());
        let teardown = sb.terminate().expect("first terminate bills teardown");
        assert!(!teardown.is_zero());
        assert_eq!(sb.state(), SandboxState::Terminated);
    }

    #[test]
    fn pause_rejected_outside_running() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 20, &images, "ubuntu:20.04");
        sb.pause();
        // Paused → pause is illegal.
        assert!(!sb.pause());
        assert_eq!(sb.state(), SandboxState::Paused);
        sb.resume();
        sb.terminate();
        // Terminated → pause is illegal and does not resurrect the sandbox.
        assert!(!sb.pause());
        assert_eq!(sb.state(), SandboxState::Terminated);
    }

    #[test]
    fn resume_rejected_outside_paused() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 20, &images, "ubuntu:20.04");
        // Running → resume is a no-op with no cost billed.
        assert!(sb.resume().is_none());
        assert_eq!(sb.state(), SandboxState::Running);
        sb.terminate();
        assert!(sb.resume().is_none());
        assert_eq!(sb.state(), SandboxState::Terminated);
    }

    #[test]
    fn resume_bills_the_cheap_warm_cost_once_per_pause() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 20, &images, "ubuntu:20.04");
        assert!(sb.pause());
        let resume = sb.resume().expect("paused sandbox resumes");
        // Resume is the warm tier: far below any spawn, well above zero.
        assert_eq!(resume, SimDuration::from_micros(150));
        assert!(resume < SandboxProfile::for_type(SandboxType::BareMetal).spawn_cost(1));
        // Back-to-back resume without an intervening pause bills nothing.
        assert!(sb.resume().is_none());
        assert!(sb.pause());
        assert_eq!(sb.resume(), Some(SimDuration::from_micros(150)));
    }

    #[test]
    fn terminate_is_billed_exactly_once() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 20, &images, "ubuntu:20.04");
        assert!(sb.terminate().is_some());
        // Double-terminate is an illegal transition: no second teardown bill.
        assert!(sb.terminate().is_none());
        assert_eq!(sb.state(), SandboxState::Terminated);
    }

    #[test]
    fn terminate_from_paused_still_tears_down() {
        let images = ImageRegistry::new();
        let (mut sb, _) = Sandbox::spawn(SandboxType::Docker, 1, 1 << 20, &images, "ubuntu:20.04");
        sb.pause();
        let teardown = sb.terminate().expect("paused sandbox can be destroyed");
        assert_eq!(
            teardown,
            SandboxProfile::for_type(SandboxType::Docker).teardown_cost
        );
    }

    #[test]
    fn fork_setup_is_microseconds_for_every_type() {
        for sandbox_type in SandboxType::all() {
            let profile = SandboxProfile::for_type(sandbox_type);
            let fork = profile.fork_setup_cost(1);
            assert!(
                fork < SimDuration::from_micros(100),
                "{sandbox_type:?} fork setup {fork:?} must stay sub-100µs"
            );
            // The whole point of the fork tier: orders of magnitude under a
            // cold spawn of the same sandbox type.
            assert!(profile.spawn_cost(1).as_micros_f64() / fork.as_micros_f64() > 100.0);
        }
    }

    #[test]
    fn forked_child_inherits_package_and_runs() {
        let images = ImageRegistry::new();
        let (mut parent, _) =
            Sandbox::spawn(SandboxType::BareMetal, 2, 1 << 30, &images, "ubuntu:20.04");
        parent.load_package(CodePackage::minimal("echo"));
        let snapshot =
            crate::snapshot::SandboxSnapshot::capture(&parent, sim_core::SimTime::ZERO).unwrap();
        let (child, setup) = Sandbox::fork_from(&snapshot, 4);
        assert_eq!(child.state(), SandboxState::Running);
        assert_eq!(child.workers(), 4);
        assert_eq!(child.package().unwrap().name(), "echo");
        assert_eq!(child.memory_bytes(), 1 << 30);
        assert_eq!(
            setup,
            SandboxProfile::for_type(SandboxType::BareMetal).fork_setup_cost(4)
        );
    }

    #[test]
    fn load_package_cost_is_small_and_stores_package() {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 20, &images, "ubuntu:20.04");
        assert!(sb.package().is_none());
        let cost = sb.load_package(CodePackage::minimal("noop"));
        assert!(cost.as_millis_f64() < 1.0);
        assert_eq!(sb.package().unwrap().name(), "noop");
    }

    #[test]
    fn uncached_image_inflates_docker_cold_start() {
        let images = ImageRegistry::new();
        images.push(crate::registry::ImageInfo {
            name: "pytorch-big:latest".into(),
            size_bytes: 1_000 * 1024 * 1024,
        });
        let (_sb, breakdown) = Sandbox::spawn(
            SandboxType::Docker,
            1,
            1 << 30,
            &images,
            "pytorch-big:latest",
        );
        assert!(breakdown.image_pull.as_secs_f64() > 2.0);
    }
}
