//! The rFaaS function ABI.
//!
//! The paper's function interface (Listing 1) is
//! `uint32_t f(void* in, uint32_t size, void* out)`: the input payload is
//! written by the client into the executor's registered buffer, the function
//! writes its result into the registered output buffer, and the return value
//! is the number of output bytes the executor writes back into the client's
//! memory. The Rust equivalent is the [`RemoteFunction`] trait; closures are
//! adapted through [`SharedFunction::from_fn`].

use std::fmt;
use std::sync::Arc;

use sim_core::SimDuration;

/// Error raised by a function body.
///
/// Marked `#[non_exhaustive]`: downstream matches must carry a wildcard arm
/// so new failure modes can be added without a breaking release.
#[non_exhaustive]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FunctionError {
    /// The output produced by the function does not fit in the registered
    /// output buffer the client allocated.
    OutputTooLarge {
        /// Bytes the function wanted to produce.
        required: usize,
        /// Capacity of the output buffer.
        capacity: usize,
    },
    /// The input payload failed validation (wrong size, bad magic, ...).
    InvalidInput(String),
    /// The function body failed for a domain-specific reason.
    ExecutionFailed(String),
    /// The function touched state outside its declaration: an undeclared
    /// key, or a write to a key declared read-only.
    StateAccess(String),
}

impl fmt::Display for FunctionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FunctionError::OutputTooLarge { required, capacity } => write!(
                f,
                "function output of {required} bytes exceeds the {capacity}-byte output buffer"
            ),
            FunctionError::InvalidInput(msg) => write!(f, "invalid input: {msg}"),
            FunctionError::ExecutionFailed(msg) => write!(f, "execution failed: {msg}"),
            FunctionError::StateAccess(msg) => write!(f, "state access violation: {msg}"),
        }
    }
}

impl std::error::Error for FunctionError {}

/// Result of one function execution: the number of bytes written to the
/// output buffer.
pub type FunctionOutcome = Result<usize, FunctionError>;

/// The state window handed to a stateful function body.
///
/// The executor materialises the keys the binding *declared* into
/// worker-visible buffers before dispatch; this trait is the function's view
/// of that window. Reads hand out borrowed bytes (no staging copy inside the
/// function), writes hand out the mutable value buffer and mark it dirty so
/// the executor writes it back after completion. Touching an undeclared key,
/// or writing a key declared read-only, is a [`FunctionError::StateAccess`].
pub trait StateAccess {
    /// Borrow the current value of a declared key.
    fn read(&self, key: &str) -> Result<&[u8], FunctionError>;

    /// Borrow the value of a declared read-write key for mutation (resizing
    /// is allowed). The key is marked dirty and written back after the
    /// invocation completes.
    fn write(&mut self, key: &str) -> Result<&mut Vec<u8>, FunctionError>;
}

/// A [`StateAccess`] window over nothing — every access fails. Used when a
/// stateful function is dispatched without declared state.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoState;

impl StateAccess for NoState {
    fn read(&self, key: &str) -> Result<&[u8], FunctionError> {
        Err(FunctionError::StateAccess(format!(
            "key '{key}' was not declared by this binding"
        )))
    }

    fn write(&mut self, key: &str) -> Result<&mut Vec<u8>, FunctionError> {
        Err(FunctionError::StateAccess(format!(
            "key '{key}' was not declared by this binding"
        )))
    }
}

/// A serverless function body.
///
/// Implementations must be thread-safe: rFaaS executors run one function
/// instance per worker thread and the same registered code may execute
/// concurrently on all of them.
pub trait RemoteFunction: Send + Sync {
    /// Execute the function over `input`, writing the result into `output`
    /// and returning the number of valid output bytes.
    fn invoke(&self, input: &[u8], output: &mut [u8]) -> FunctionOutcome;

    /// Short, human-readable name (used in logs and billing records).
    fn name(&self) -> &str {
        "anonymous"
    }
}

/// A reference-counted function, the unit stored in code packages.
#[derive(Clone)]
pub struct SharedFunction {
    name: Arc<str>,
    body: Arc<dyn RemoteFunction>,
    /// Optional virtual-time cost model: maps input size to the compute time
    /// charged on the executing worker's clock. Functions without a model
    /// charge nothing beyond the platform dispatch overhead (appropriate for
    /// the paper's no-op echo benchmarks).
    cost: Option<Arc<dyn Fn(usize) -> SimDuration + Send + Sync>>,
    /// Optional stateful body. When present, [`SharedFunction::invoke_stateful`]
    /// routes through it with the executor-materialised state window;
    /// otherwise it falls back to the stateless `body`.
    #[allow(clippy::type_complexity)]
    stateful: Option<
        Arc<dyn Fn(&[u8], &mut dyn StateAccess, &mut [u8]) -> FunctionOutcome + Send + Sync>,
    >,
}

impl fmt::Debug for SharedFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedFunction")
            .field("name", &self.name)
            .finish()
    }
}

impl SharedFunction {
    /// Wrap an existing [`RemoteFunction`] implementation.
    pub fn new(name: &str, body: Arc<dyn RemoteFunction>) -> SharedFunction {
        SharedFunction {
            name: Arc::from(name),
            body,
            cost: None,
            stateful: None,
        }
    }

    /// Adapt a closure with the paper's `f(in, size, out) -> out_size` shape.
    pub fn from_fn<F>(name: &str, f: F) -> SharedFunction
    where
        F: Fn(&[u8], &mut [u8]) -> FunctionOutcome + Send + Sync + 'static,
    {
        struct ClosureFunction<F> {
            name: String,
            f: F,
        }
        impl<F> RemoteFunction for ClosureFunction<F>
        where
            F: Fn(&[u8], &mut [u8]) -> FunctionOutcome + Send + Sync,
        {
            fn invoke(&self, input: &[u8], output: &mut [u8]) -> FunctionOutcome {
                (self.f)(input, output)
            }
            fn name(&self) -> &str {
                &self.name
            }
        }
        SharedFunction {
            name: Arc::from(name),
            body: Arc::new(ClosureFunction {
                name: name.to_string(),
                f,
            }),
            cost: None,
            stateful: None,
        }
    }

    /// Adapt a stateful closure: `f(in, state, out) -> out_size`, where
    /// `state` is the window over the keys the binding declared. Invoking a
    /// stateful function through the stateless [`SharedFunction::invoke`]
    /// path fails with [`FunctionError::StateAccess`], so a binding that
    /// forgot `with_state` fails loudly rather than silently computing on
    /// nothing.
    pub fn from_stateful_fn<F>(name: &str, f: F) -> SharedFunction
    where
        F: Fn(&[u8], &mut dyn StateAccess, &mut [u8]) -> FunctionOutcome + Send + Sync + 'static,
    {
        struct StatelessShim;
        impl RemoteFunction for StatelessShim {
            fn invoke(&self, _input: &[u8], _output: &mut [u8]) -> FunctionOutcome {
                Err(FunctionError::StateAccess(
                    "stateful function invoked without a state window".into(),
                ))
            }
        }
        SharedFunction {
            name: Arc::from(name),
            body: Arc::new(StatelessShim),
            cost: None,
            stateful: Some(Arc::new(f)),
        }
    }

    /// Attach a virtual-time cost model mapping input size (bytes) to compute
    /// time. Used by the evaluation workloads so that offloaded kernels charge
    /// realistic execution time on the worker's clock.
    pub fn with_cost_model(
        mut self,
        cost: impl Fn(usize) -> SimDuration + Send + Sync + 'static,
    ) -> SharedFunction {
        self.cost = Some(Arc::new(cost));
        self
    }

    /// The function name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Execute the function.
    pub fn invoke(&self, input: &[u8], output: &mut [u8]) -> FunctionOutcome {
        self.body.invoke(input, output)
    }

    /// Execute the function with a state window. Stateless functions ignore
    /// the window and run their plain body, so executors can route every
    /// dispatch through this entry point.
    pub fn invoke_stateful(
        &self,
        input: &[u8],
        state: &mut dyn StateAccess,
        output: &mut [u8],
    ) -> FunctionOutcome {
        match &self.stateful {
            Some(f) => f(input, state, output),
            None => self.body.invoke(input, output),
        }
    }

    /// Whether this function declares a stateful body.
    pub fn is_stateful(&self) -> bool {
        self.stateful.is_some()
    }

    /// Virtual compute time charged for an invocation with `input_len` bytes
    /// of payload (zero when no cost model is attached).
    pub fn compute_cost(&self, input_len: usize) -> SimDuration {
        self.cost
            .as_ref()
            .map(|c| c(input_len))
            .unwrap_or(SimDuration::ZERO)
    }
}

/// The no-op "echo" function used throughout the paper's microbenchmarks:
/// it returns the input payload unchanged (Sec. V-A, V-C, V-D).
pub fn echo_function() -> SharedFunction {
    SharedFunction::from_fn("echo", |input, output| {
        if output.len() < input.len() {
            return Err(FunctionError::OutputTooLarge {
                required: input.len(),
                capacity: output.len(),
            });
        }
        output[..input.len()].copy_from_slice(input);
        Ok(input.len())
    })
}

/// A function that returns a fixed-size all-zero payload regardless of input,
/// used by tests that need asymmetric input/output sizes.
pub fn zeros_function(output_len: usize) -> SharedFunction {
    SharedFunction::from_fn("zeros", move |_input, output| {
        if output.len() < output_len {
            return Err(FunctionError::OutputTooLarge {
                required: output_len,
                capacity: output.len(),
            });
        }
        output[..output_len].fill(0);
        Ok(output_len)
    })
}

/// A function that always fails, used by fault-injection tests.
pub fn failing_function(message: &str) -> SharedFunction {
    let message = message.to_string();
    SharedFunction::from_fn("always-fails", move |_input, _output| {
        Err(FunctionError::ExecutionFailed(message.clone()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_copies_input_to_output() {
        let f = echo_function();
        let input = vec![1u8, 2, 3, 4];
        let mut output = vec![0u8; 16];
        let n = f.invoke(&input, &mut output).unwrap();
        assert_eq!(n, 4);
        assert_eq!(&output[..4], &[1, 2, 3, 4]);
        assert_eq!(f.name(), "echo");
    }

    #[test]
    fn echo_rejects_undersized_output() {
        let f = echo_function();
        let input = vec![0u8; 32];
        let mut output = vec![0u8; 8];
        let err = f.invoke(&input, &mut output).unwrap_err();
        assert!(matches!(
            err,
            FunctionError::OutputTooLarge {
                required: 32,
                capacity: 8
            }
        ));
    }

    #[test]
    fn zeros_ignores_input() {
        let f = zeros_function(10);
        let mut output = vec![0xFFu8; 16];
        let n = f.invoke(&[1, 2, 3], &mut output).unwrap();
        assert_eq!(n, 10);
        assert_eq!(&output[..10], &[0u8; 10]);
        assert_eq!(output[10], 0xFF);
    }

    #[test]
    fn failing_function_reports_error() {
        let f = failing_function("boom");
        let mut output = vec![0u8; 8];
        let err = f.invoke(&[], &mut output).unwrap_err();
        assert_eq!(err, FunctionError::ExecutionFailed("boom".into()));
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn closure_adapter_preserves_name_and_behaviour() {
        let double = SharedFunction::from_fn("double", |input, output| {
            let n = input.len();
            if output.len() < 2 * n {
                return Err(FunctionError::OutputTooLarge {
                    required: 2 * n,
                    capacity: output.len(),
                });
            }
            output[..n].copy_from_slice(input);
            output[n..2 * n].copy_from_slice(input);
            Ok(2 * n)
        });
        assert_eq!(double.name(), "double");
        let mut out = vec![0u8; 8];
        assert_eq!(double.invoke(&[7, 8], &mut out).unwrap(), 4);
        assert_eq!(&out[..4], &[7, 8, 7, 8]);
    }

    #[test]
    fn stateful_functions_route_through_the_state_window() {
        use std::collections::BTreeMap;

        /// Minimal window over a map, for the ABI test only — the real
        /// window lives in the executor.
        struct MapState(BTreeMap<String, Vec<u8>>);
        impl StateAccess for MapState {
            fn read(&self, key: &str) -> Result<&[u8], FunctionError> {
                self.0
                    .get(key)
                    .map(|v| v.as_slice())
                    .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
            }
            fn write(&mut self, key: &str) -> Result<&mut Vec<u8>, FunctionError> {
                self.0
                    .get_mut(key)
                    .ok_or_else(|| FunctionError::StateAccess(format!("undeclared '{key}'")))
            }
        }

        let f = SharedFunction::from_stateful_fn("counter", |input, state, output| {
            let count = state.write("count")?;
            count[0] = count[0].wrapping_add(input.len() as u8);
            output[0] = count[0];
            Ok(1)
        });
        assert!(f.is_stateful());
        assert!(!echo_function().is_stateful());

        let mut state = MapState(BTreeMap::from([("count".to_string(), vec![0u8])]));
        let mut out = vec![0u8; 4];
        f.invoke_stateful(&[1, 2, 3], &mut state, &mut out).unwrap();
        f.invoke_stateful(&[1], &mut state, &mut out).unwrap();
        assert_eq!(out[0], 4);
        assert_eq!(state.0["count"], vec![4]);

        // The stateless entry point refuses to run a stateful body...
        let err = f.invoke(&[1], &mut out).unwrap_err();
        assert!(matches!(err, FunctionError::StateAccess(_)));
        // ...and an undeclared key is a typed violation.
        let g = SharedFunction::from_stateful_fn("oops", |_in, state, _out| {
            state.read("undeclared")?;
            Ok(0)
        });
        let err = g.invoke_stateful(&[], &mut state, &mut out).unwrap_err();
        assert!(matches!(err, FunctionError::StateAccess(_)));
    }

    #[test]
    fn stateless_functions_ignore_the_state_window() {
        let f = echo_function();
        let mut out = vec![0u8; 4];
        let n = f.invoke_stateful(&[5, 6], &mut NoState, &mut out).unwrap();
        assert_eq!(n, 2);
        assert_eq!(&out[..2], &[5, 6]);
        // NoState rejects everything.
        assert!(NoState.read("k").is_err());
        assert!(NoState.write("k").is_err());
    }

    #[test]
    fn shared_function_is_cloneable_and_thread_safe() {
        let f = echo_function();
        let g = f.clone();
        let handle = std::thread::spawn(move || {
            let mut out = vec![0u8; 4];
            g.invoke(&[9; 4], &mut out).unwrap()
        });
        assert_eq!(handle.join().unwrap(), 4);
        let mut out = vec![0u8; 4];
        assert_eq!(f.invoke(&[1; 4], &mut out).unwrap(), 4);
    }
}
