//! Warm sandbox pooling: pre-warmed fork parents per sandbox type and package.
//!
//! The pool mirrors the connection plane's warmth pool
//! (`rdma_fabric::ConnectionPool`): tearing an executor down *parks* its
//! paused sandbox together with a [`SandboxSnapshot`] instead of destroying
//! it; a later allocation of the same `(SandboxType, package)` key either
//! *leases* the parked parent back (warm-pool reuse: resume instead of
//! spawn) or *forks* a child from the parent's snapshot, leaving the parent
//! parked so one warm parent can seed many children.
//!
//! Admission is capacity-bounded per key (a parent that would overflow the
//! pool is rejected and torn down normally) and idle parents age out under
//! the same deterministic sweep order as the connection pool: keys in map
//! order, oldest parent first.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use sim_core::sync::{ranks, OrderedMutex};
use sim_core::{SimDuration, SimTime};

use crate::sandbox::{Sandbox, SandboxState, SandboxType};
use crate::snapshot::SandboxSnapshot;

/// Counters exposed by [`WarmPool::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmPoolStats {
    /// Allocations satisfied from a parked parent (lease or fork source).
    pub hits: u64,
    /// Allocations that found no parent for their key (full cold spawn).
    pub misses: u64,
    /// Parents dropped by the idle-eviction sweep.
    pub evictions: u64,
    /// Parents parked into the pool.
    pub returned: u64,
    /// Parents refused admission (pool disabled or key at capacity).
    pub rejected: u64,
}

/// A paused parent sandbox parked in the pool, ready to be resumed or to
/// serve as a fork source.
#[derive(Debug, Clone)]
pub struct WarmParent {
    id: u64,
    sandbox: Sandbox,
    snapshot: SandboxSnapshot,
    parked_at: SimTime,
}

impl WarmParent {
    /// Pool-unique id, assigned at park time (monotonic: older parents of a
    /// key have smaller ids).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The parked (paused) sandbox.
    pub fn sandbox(&self) -> &Sandbox {
        &self.sandbox
    }

    /// Take ownership of the parked sandbox (warm-pool reuse path).
    pub fn into_sandbox(self) -> Sandbox {
        self.sandbox
    }

    /// The snapshot captured when the parent was parked.
    pub fn snapshot(&self) -> &SandboxSnapshot {
        &self.snapshot
    }

    /// When the parent was parked.
    pub fn parked_at(&self) -> SimTime {
        self.parked_at
    }
}

#[derive(Debug)]
struct WarmPoolInner {
    /// Parked parents per `(SandboxType, package)` key. Ordered map so the
    /// eviction sweep and any diagnostic iteration are deterministic.
    idle: BTreeMap<String, VecDeque<WarmParent>>,
    max_idle_per_key: usize,
    next_id: u64,
    stats: WarmPoolStats,
}

/// A pool of pre-warmed parent sandboxes keyed by sandbox type and package.
///
/// Cloning is shallow: all clones share one pool, which is how an executor's
/// allocator and diagnostics see the same parked parents.
#[derive(Debug, Clone)]
pub struct WarmPool {
    inner: Arc<OrderedMutex<WarmPoolInner>>,
}

impl Default for WarmPool {
    fn default() -> Self {
        WarmPool::disabled()
    }
}

impl WarmPool {
    /// A disabled pool: every park is rejected, every lease is a miss. The
    /// default, so executors opt in to warm pooling explicitly.
    pub fn disabled() -> WarmPool {
        WarmPool::with_capacity(0)
    }

    /// A pool keeping at most `max_idle_per_key` parked parents per
    /// `(SandboxType, package)` key. Zero disables the pool.
    pub fn with_capacity(max_idle_per_key: usize) -> WarmPool {
        WarmPool {
            inner: Arc::new(OrderedMutex::new(
                ranks::WARM_POOL,
                WarmPoolInner {
                    idle: BTreeMap::new(),
                    max_idle_per_key,
                    next_id: 0,
                    stats: WarmPoolStats::default(),
                },
            )),
        }
    }

    /// Max parked parents per key (zero: pool disabled).
    pub fn capacity_per_key(&self) -> usize {
        self.inner.lock().max_idle_per_key
    }

    /// Pool key of a `(SandboxType, package)` pair.
    pub fn key(sandbox_type: SandboxType, package: &str) -> String {
        format!("{sandbox_type:?}/{package}")
    }

    /// Offer a parent for admission at `now`. The sandbox must be running or
    /// already paused and is parked paused, together with its snapshot.
    /// Returns the parked parent's id, or `None` if admission rejected it
    /// (pool disabled, key at capacity, sandbox not parkable) — the caller
    /// then tears the sandbox down normally.
    pub fn park(&self, mut sandbox: Sandbox, now: SimTime) -> Option<u64> {
        let snapshot = SandboxSnapshot::capture(&sandbox, now);
        let mut inner = self.inner.lock();
        let cap = inner.max_idle_per_key;
        let Some(snapshot) = snapshot else {
            inner.stats.rejected += 1;
            return None;
        };
        if sandbox.state() == SandboxState::Running {
            sandbox.pause();
        }
        if sandbox.state() != SandboxState::Paused {
            inner.stats.rejected += 1;
            return None;
        }
        let key = WarmPool::key(snapshot.sandbox_type(), snapshot.package().name());
        let parked = inner.idle.get(&key).map_or(0, |p| p.len());
        if parked >= cap {
            inner.stats.rejected += 1;
            return None;
        }
        let id = inner.next_id;
        inner.next_id += 1;
        inner.stats.returned += 1;
        inner.idle.entry(key).or_default().push_back(WarmParent {
            id,
            sandbox,
            snapshot,
            parked_at: now,
        });
        Some(id)
    }

    /// Lease the oldest parked parent for the key, removing it from the pool
    /// (warm-pool reuse: the caller resumes the sandbox). A parent can never
    /// be leased twice without being parked again in between.
    pub fn lease(&self, sandbox_type: SandboxType, package: &str) -> Option<WarmParent> {
        let key = WarmPool::key(sandbox_type, package);
        let mut inner = self.inner.lock();
        let leased = match inner.idle.get_mut(&key) {
            Some(parents) => parents.pop_front(),
            None => None,
        };
        if leased.is_some() {
            inner.stats.hits += 1;
            if inner.idle.get(&key).is_some_and(|p| p.is_empty()) {
                inner.idle.remove(&key);
            }
        } else {
            inner.stats.misses += 1;
        }
        leased
    }

    /// Snapshot of the oldest parked parent for the key, *leaving the parent
    /// parked* — the remote-fork path, where one warm parent seeds many
    /// children and pages are read from it on demand.
    pub fn fork_source(&self, sandbox_type: SandboxType, package: &str) -> Option<SandboxSnapshot> {
        let key = WarmPool::key(sandbox_type, package);
        let mut inner = self.inner.lock();
        let snapshot = inner
            .idle
            .get(&key)
            .and_then(|parents| parents.front())
            .map(|parent| parent.snapshot.clone());
        if snapshot.is_some() {
            inner.stats.hits += 1;
        } else {
            inner.stats.misses += 1;
        }
        snapshot
    }

    /// Evict parents parked longer than `max_idle` before `now`. Returns the
    /// evicted ids in deterministic sweep order (keys in map order, oldest
    /// parent first within a key).
    pub fn evict_idle(&self, now: SimTime, max_idle: SimDuration) -> Vec<u64> {
        let mut inner = self.inner.lock();
        let mut evicted = Vec::new();
        inner.idle.retain(|_, parents| {
            parents.retain(|parent| {
                let keep = now.saturating_since(parent.parked_at) <= max_idle;
                if !keep {
                    evicted.push(parent.id);
                }
                keep
            });
            !parents.is_empty()
        });
        inner.stats.evictions += evicted.len() as u64;
        evicted
    }

    /// Total parked parents across all keys.
    pub fn idle_count(&self) -> usize {
        self.inner.lock().idle.values().map(|p| p.len()).sum()
    }

    /// Parked parents for one key.
    pub fn idle_for(&self, sandbox_type: SandboxType, package: &str) -> usize {
        let key = WarmPool::key(sandbox_type, package);
        self.inner.lock().idle.get(&key).map_or(0, |p| p.len())
    }

    /// Snapshot of the pool's counters.
    pub fn stats(&self) -> WarmPoolStats {
        self.inner.lock().stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{CodePackage, ImageRegistry};

    fn warm_parent(package: &str) -> Sandbox {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 30, &images, "ubuntu:20.04");
        sb.load_package(CodePackage::minimal(package));
        sb
    }

    #[test]
    fn disabled_pool_rejects_and_misses() {
        let pool = WarmPool::disabled();
        assert!(pool.park(warm_parent("echo"), SimTime::ZERO).is_none());
        assert!(pool.lease(SandboxType::BareMetal, "echo").is_none());
        let stats = pool.stats();
        assert_eq!((stats.rejected, stats.misses, stats.returned), (1, 1, 0));
    }

    #[test]
    fn park_then_lease_resumes_the_same_parent() {
        let pool = WarmPool::with_capacity(2);
        let id = pool
            .park(warm_parent("echo"), SimTime::from_secs(1))
            .unwrap();
        let parent = pool.lease(SandboxType::BareMetal, "echo").expect("hit");
        assert_eq!(parent.id(), id);
        assert_eq!(parent.sandbox().state(), SandboxState::Paused);
        let mut sandbox = parent.into_sandbox();
        assert!(sandbox.resume().is_some());
        // The parent left the pool: a second lease misses.
        assert!(pool.lease(SandboxType::BareMetal, "echo").is_none());
        let stats = pool.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn keys_split_by_type_and_package() {
        let pool = WarmPool::with_capacity(4);
        pool.park(warm_parent("a"), SimTime::ZERO).unwrap();
        assert!(pool.lease(SandboxType::BareMetal, "b").is_none());
        assert!(pool.lease(SandboxType::Docker, "a").is_none());
        assert!(pool.lease(SandboxType::BareMetal, "a").is_some());
    }

    #[test]
    fn admission_rejects_past_capacity() {
        let pool = WarmPool::with_capacity(1);
        assert!(pool.park(warm_parent("echo"), SimTime::ZERO).is_some());
        assert!(pool.park(warm_parent("echo"), SimTime::ZERO).is_none());
        assert_eq!(pool.idle_for(SandboxType::BareMetal, "echo"), 1);
        assert_eq!(pool.stats().rejected, 1);
    }

    #[test]
    fn unparkable_sandboxes_are_rejected() {
        let pool = WarmPool::with_capacity(4);
        let mut dead = warm_parent("echo");
        dead.terminate();
        assert!(pool.park(dead, SimTime::ZERO).is_none());
        // No package loaded: nothing to fork from, reject.
        let images = ImageRegistry::new();
        let (blank, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 30, &images, "ubuntu:20.04");
        assert!(pool.park(blank, SimTime::ZERO).is_none());
        assert_eq!(pool.stats().rejected, 2);
    }

    #[test]
    fn fork_source_leaves_the_parent_parked() {
        let pool = WarmPool::with_capacity(2);
        pool.park(warm_parent("echo"), SimTime::from_secs(1))
            .unwrap();
        let snap_a = pool
            .fork_source(SandboxType::BareMetal, "echo")
            .expect("hit");
        let snap_b = pool
            .fork_source(SandboxType::BareMetal, "echo")
            .expect("hit");
        assert_eq!(snap_a.total_pages(), snap_b.total_pages());
        assert_eq!(pool.idle_count(), 1);
        assert_eq!(pool.stats().hits, 2);
    }

    #[test]
    fn idle_eviction_is_oldest_first_in_key_order() {
        let pool = WarmPool::with_capacity(4);
        // Park under two keys with interleaved ages.
        let a_old = pool.park(warm_parent("a"), SimTime::from_secs(0)).unwrap();
        let b_old = pool.park(warm_parent("b"), SimTime::from_secs(1)).unwrap();
        let a_new = pool.park(warm_parent("a"), SimTime::from_secs(90)).unwrap();
        let evicted = pool.evict_idle(SimTime::from_secs(100), SimDuration::from_secs(60));
        // Sweep order: key "BareMetal/a" before "BareMetal/b", oldest first.
        assert_eq!(evicted, vec![a_old, b_old]);
        assert_eq!(pool.idle_count(), 1);
        assert!(pool
            .lease(SandboxType::BareMetal, "a")
            .is_some_and(|p| p.id() == a_new));
    }

    #[test]
    fn shared_clones_see_one_pool() {
        let pool = WarmPool::with_capacity(2);
        let clone = pool.clone();
        pool.park(warm_parent("echo"), SimTime::ZERO).unwrap();
        assert!(clone.lease(SandboxType::BareMetal, "echo").is_some());
        assert_eq!(pool.stats().hits, 1);
    }

    proptest::proptest! {
        // Capacity conservation under lease/park/evict interleavings, and no
        // double-lease: a leased id can never be produced again (parents get
        // a fresh id when re-parked), and the idle count always equals
        // returned - hits-that-removed - evictions.
        #[test]
        fn prop_warm_pool_conserves_parents(ops: Vec<(u8, u8)>) {
            let pool = WarmPool::with_capacity(2);
            let mut leased_ids = std::collections::BTreeSet::new();
            let mut removed_hits = 0u64;
            let mut t = 0u64;
            for (op, key) in ops {
                let package = format!("p{}", key % 3);
                match op % 4 {
                    0 => {
                        t += 1;
                        pool.park(warm_parent(&package), SimTime::from_secs(t));
                    }
                    1 => {
                        if let Some(parent) = pool.lease(SandboxType::BareMetal, &package) {
                            removed_hits += 1;
                            // No double-lease: every leased id is fresh.
                            proptest::prop_assert!(leased_ids.insert(parent.id()));
                        }
                    }
                    2 => {
                        let _ = pool.fork_source(SandboxType::BareMetal, &package);
                    }
                    _ => {
                        t += 1;
                        pool.evict_idle(SimTime::from_secs(t), SimDuration::from_secs(5));
                    }
                }
                let stats = pool.stats();
                proptest::prop_assert_eq!(
                    pool.idle_count() as u64,
                    stats.returned - removed_hits - stats.evictions
                );
                proptest::prop_assert!(pool.idle_count() <= 3 * 2);
            }
        }

        // Deterministic eviction order: two pools driven by the same op
        // sequence evict identical id sequences, sorted by (key, age).
        #[test]
        fn prop_warm_pool_eviction_deterministic(ops: Vec<(bool, u8)>) {
            let run = || {
                let pool = WarmPool::with_capacity(3);
                let mut t = 0u64;
                let mut sweeps = Vec::new();
                for (is_park, key) in &ops {
                    t += 7;
                    let package = format!("p{}", key % 3);
                    if *is_park {
                        pool.park(warm_parent(&package), SimTime::from_secs(t));
                    } else {
                        sweeps.push(pool.evict_idle(
                            SimTime::from_secs(t),
                            SimDuration::from_secs(20),
                        ));
                    }
                }
                (sweeps, pool.stats())
            };
            let (sweeps_a, stats_a) = run();
            let (sweeps_b, stats_b) = run();
            proptest::prop_assert_eq!(&sweeps_a, &sweeps_b);
            proptest::prop_assert_eq!(stats_a, stats_b);
            // No id is ever evicted twice across the whole run.
            let mut seen = std::collections::BTreeSet::new();
            for id in sweeps_a.iter().flatten() {
                proptest::prop_assert!(seen.insert(*id));
            }
        }
    }
}
