//! Sandbox snapshots and page-level fault accounting for remote fork.
//!
//! A warm executor that is about to be parked can capture a
//! [`SandboxSnapshot`]: the package, memory geometry and resident set of the
//! parent at a virtual-time point, expressed as a *page map*. A forked child
//! starts from the snapshot's metadata only — its pages are faulted in
//! lazily, served by one-sided RDMA reads from the parent node (the
//! MITOSIS-style remote fork of "No Provisioned Concurrency"). The
//! [`FaultTracker`] does the bookkeeping: every page is faulted exactly once
//! per child, in a deterministic order, no matter how the prefetch windows
//! are sized.

use sim_core::SimTime;

use crate::registry::CodePackage;
use crate::sandbox::{Sandbox, SandboxState, SandboxType};

/// Snapshot page granularity; matches the fabric's registered-memory pages.
pub const SNAPSHOT_PAGE_BYTES: usize = 4096;

/// Resident set of the executor process itself (heap, registered buffers,
/// loader state) beyond the function package — what a fork must eventually
/// fault in even for a minimal package.
pub const EXECUTOR_RESIDENT_BYTES: usize = 512 * 1024;

/// Parent state captured at a virtual-time point, from which children fork.
#[derive(Debug, Clone)]
pub struct SandboxSnapshot {
    sandbox_type: SandboxType,
    package: CodePackage,
    memory_bytes: u64,
    resident_bytes: u64,
    captured_at: SimTime,
}

impl SandboxSnapshot {
    /// Capture a snapshot of `sandbox` at `now`. Only a live (running or
    /// paused) sandbox with a loaded package can serve as a fork parent.
    pub fn capture(sandbox: &Sandbox, now: SimTime) -> Option<SandboxSnapshot> {
        if !matches!(
            sandbox.state(),
            SandboxState::Running | SandboxState::Paused
        ) {
            return None;
        }
        let package = sandbox.package()?.clone();
        let resident_bytes = EXECUTOR_RESIDENT_BYTES as u64 + package.binary_bytes() as u64;
        Some(SandboxSnapshot {
            sandbox_type: sandbox.sandbox_type(),
            package,
            memory_bytes: sandbox.memory_bytes(),
            resident_bytes,
            captured_at: now,
        })
    }

    /// Sandbox type of the parent.
    pub fn sandbox_type(&self) -> SandboxType {
        self.sandbox_type
    }

    /// The package loaded into the parent (inherited by every child).
    pub fn package(&self) -> &CodePackage {
        &self.package
    }

    /// Leased memory of the parent in bytes.
    pub fn memory_bytes(&self) -> u64 {
        self.memory_bytes
    }

    /// Bytes actually resident at capture time (what a child must fault).
    pub fn resident_bytes(&self) -> u64 {
        self.resident_bytes
    }

    /// Virtual time the snapshot was taken.
    pub fn captured_at(&self) -> SimTime {
        self.captured_at
    }

    /// Number of pages in the snapshot's page map.
    pub fn total_pages(&self) -> usize {
        (self.resident_bytes as usize).div_ceil(SNAPSHOT_PAGE_BYTES)
    }
}

/// Per-child fault bookkeeping over a snapshot's page map.
///
/// Pages are faulted in ascending page order, a prefetch window at a time;
/// the tracker guarantees each page is counted exactly once and that no
/// window sizing can skip or lose a page.
#[derive(Debug, Clone)]
pub struct FaultTracker {
    total_pages: usize,
    faulted: Vec<u64>,
    faulted_count: usize,
    next_page: usize,
}

impl FaultTracker {
    /// Tracker over a page map of `total_pages` pages, all initially cold.
    pub fn new(total_pages: usize) -> FaultTracker {
        FaultTracker {
            total_pages,
            faulted: vec![0u64; total_pages.div_ceil(64)],
            faulted_count: 0,
            next_page: 0,
        }
    }

    /// Tracker over a snapshot's page map.
    pub fn for_snapshot(snapshot: &SandboxSnapshot) -> FaultTracker {
        FaultTracker::new(snapshot.total_pages())
    }

    /// Fault a single page. Returns `true` the first time the page is
    /// touched (a real remote read), `false` when it is already resident.
    pub fn fault(&mut self, page: usize) -> bool {
        if page >= self.total_pages {
            return false;
        }
        let (word, bit) = (page / 64, 1u64 << (page % 64));
        if self.faulted[word] & bit != 0 {
            return false;
        }
        self.faulted[word] |= bit;
        self.faulted_count += 1;
        true
    }

    /// Fault the next prefetch window of up to `window` cold pages, in page
    /// order. Returns the `(start_page, pages)` batch actually faulted, or
    /// `None` once the whole map is resident (or `window` is zero).
    pub fn fault_next_window(&mut self, window: usize) -> Option<(usize, usize)> {
        if window == 0 || self.next_page >= self.total_pages {
            return None;
        }
        let start = self.next_page;
        let mut faulted = 0;
        while faulted < window && self.next_page < self.total_pages {
            let page = self.next_page;
            self.next_page += 1;
            if self.fault(page) {
                faulted += 1;
            }
        }
        if faulted == 0 {
            None
        } else {
            Some((start, faulted))
        }
    }

    /// Pages in the map.
    pub fn total_pages(&self) -> usize {
        self.total_pages
    }

    /// Pages faulted so far.
    pub fn faulted_count(&self) -> usize {
        self.faulted_count
    }

    /// Pages still cold.
    pub fn remaining(&self) -> usize {
        self.total_pages - self.faulted_count
    }

    /// Whether every page is resident.
    pub fn is_complete(&self) -> bool {
        self.faulted_count == self.total_pages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ImageRegistry;

    fn parent() -> Sandbox {
        let images = ImageRegistry::new();
        let (mut sb, _) =
            Sandbox::spawn(SandboxType::BareMetal, 2, 1 << 30, &images, "ubuntu:20.04");
        sb.load_package(CodePackage::minimal("echo"));
        sb
    }

    #[test]
    fn snapshot_requires_a_live_parent_with_a_package() {
        let images = ImageRegistry::new();
        let (mut bare, _) =
            Sandbox::spawn(SandboxType::BareMetal, 1, 1 << 30, &images, "ubuntu:20.04");
        // No package loaded yet: nothing to fork from.
        assert!(SandboxSnapshot::capture(&bare, SimTime::ZERO).is_none());
        bare.load_package(CodePackage::minimal("echo"));
        assert!(SandboxSnapshot::capture(&bare, SimTime::ZERO).is_some());
        bare.pause();
        assert!(SandboxSnapshot::capture(&bare, SimTime::ZERO).is_some());
        bare.terminate();
        assert!(SandboxSnapshot::capture(&bare, SimTime::ZERO).is_none());
    }

    #[test]
    fn page_map_covers_executor_base_plus_package() {
        let sb = parent();
        let snap = SandboxSnapshot::capture(&sb, SimTime::from_secs(3)).unwrap();
        let expected =
            (EXECUTOR_RESIDENT_BYTES + snap.package().binary_bytes()).div_ceil(SNAPSHOT_PAGE_BYTES);
        assert_eq!(snap.total_pages(), expected);
        assert_eq!(snap.captured_at(), SimTime::from_secs(3));
        assert_eq!(snap.sandbox_type(), SandboxType::BareMetal);
    }

    #[test]
    fn windows_drain_the_map_exactly_once() {
        let mut tracker = FaultTracker::new(130);
        let mut batches = Vec::new();
        while let Some(batch) = tracker.fault_next_window(32) {
            batches.push(batch);
        }
        assert_eq!(
            batches,
            vec![(0, 32), (32, 32), (64, 32), (96, 32), (128, 2)]
        );
        assert!(tracker.is_complete());
        assert!(tracker.fault_next_window(32).is_none());
    }

    #[test]
    fn demand_fault_then_window_never_double_counts() {
        let mut tracker = FaultTracker::new(10);
        assert!(tracker.fault(3));
        assert!(!tracker.fault(3));
        // The window skips the already-resident page but still faults a full
        // window's worth of cold pages.
        assert_eq!(tracker.fault_next_window(4), Some((0, 4)));
        assert_eq!(tracker.faulted_count(), 5);
        assert_eq!(tracker.remaining(), 5);
    }

    #[test]
    fn out_of_range_pages_are_ignored() {
        let mut tracker = FaultTracker::new(4);
        assert!(!tracker.fault(4));
        assert!(!tracker.fault(1000));
        assert_eq!(tracker.faulted_count(), 0);
    }

    proptest::proptest! {
        // Every page is faulted exactly once per child: across an arbitrary
        // mix of demand faults and prefetch windows, `fault` returns true at
        // most once per page and the count matches the distinct pages hit.
        #[test]
        fn prop_fault_each_page_exactly_once(
            total in 1usize..200,
            ops: Vec<(bool, u16)>,
        ) {
            let mut tracker = FaultTracker::new(total);
            // Model: the set of resident pages plus the window scan cursor.
            let mut model = std::collections::BTreeSet::new();
            let mut cursor = 0usize;
            for (is_window, value) in ops {
                if is_window {
                    let window = value as usize % 17 + 1;
                    let before = tracker.faulted_count();
                    // Replay the window against the model: scan forward from
                    // the cursor, residency-skipping, until `window` fresh
                    // pages fault.
                    let start = cursor;
                    let mut fresh = 0usize;
                    while fresh < window && cursor < total {
                        if model.insert(cursor) {
                            fresh += 1;
                        }
                        cursor += 1;
                    }
                    let expected = if fresh == 0 { None } else { Some((start, fresh)) };
                    proptest::prop_assert_eq!(tracker.fault_next_window(window), expected);
                    proptest::prop_assert_eq!(tracker.faulted_count(), before + fresh);
                } else {
                    let page = value as usize % (total * 2);
                    let fresh = tracker.fault(page);
                    // Every page faults exactly once, whichever path touched
                    // it first; out-of-map pages never fault.
                    proptest::prop_assert_eq!(fresh, page < total && model.insert(page));
                }
                proptest::prop_assert_eq!(tracker.faulted_count(), model.len());
                proptest::prop_assert_eq!(
                    tracker.remaining(),
                    total - tracker.faulted_count()
                );
            }
        }

        // Prefetch never loses pages: draining with arbitrary window sizes
        // visits every page, batch lengths sum to the map size, and batches
        // advance strictly in page order.
        #[test]
        fn prop_fault_windows_lose_nothing(
            total in 1usize..300,
            windows: Vec<u8>,
        ) {
            let mut tracker = FaultTracker::new(total);
            let mut drained = 0usize;
            let mut last_start = None;
            for w in windows {
                match tracker.fault_next_window(w as usize % 41 + 1) {
                    Some((start, pages)) => {
                        proptest::prop_assert!(pages >= 1);
                        if let Some(prev) = last_start {
                            proptest::prop_assert!(start > prev);
                        }
                        last_start = Some(start);
                        drained += pages;
                    }
                    None => break,
                }
            }
            // Finish the drain with a fixed window.
            while let Some((_, pages)) = tracker.fault_next_window(32) {
                drained += pages;
            }
            proptest::prop_assert_eq!(drained, total);
            proptest::prop_assert!(tracker.is_complete());
            proptest::prop_assert_eq!(tracker.remaining(), 0);
        }
    }
}
