//! HTTP/REST request cost model.
//!
//! Serverless platforms expose functions behind HTTP gateways and REST
//! triggers (Fig. 3 of the paper). An invocation therefore pays, on top of
//! TCP: TLS record processing, HTTP parsing, routing in the gateway, and the
//! JSON/base64 payload encoding modelled in [`crate::encoding`]. The
//! [`HttpExchange`] helper composes those pieces into the request/response
//! time that the baseline platform models consume.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

use crate::encoding::EncodingCost;
use crate::tcp::TcpProfile;

/// Cost constants of an HTTP/1.1 + JSON API layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HttpProfile {
    /// Underlying TCP transport.
    pub tcp: TcpProfile,
    /// Payload encoding costs (base64 + JSON).
    pub encoding: EncodingCost,
    /// Fixed per-request cost of HTTP parsing and routing at the server.
    pub server_http_overhead: SimDuration,
    /// Fixed per-request cost of building/parsing HTTP messages at the client.
    pub client_http_overhead: SimDuration,
    /// TLS record protection per byte (0 disables TLS).
    pub tls_per_byte: SimDuration,
    /// Whether payloads must be base64/JSON wrapped (true for public FaaS
    /// APIs, false for internal RPC such as Nightcore's protocol).
    pub json_payloads: bool,
}

impl HttpProfile {
    /// An HTTP gateway inside the cluster (OpenWhisk-style deployment).
    pub fn cluster_gateway() -> HttpProfile {
        HttpProfile {
            tcp: TcpProfile::kernel_100g(),
            encoding: EncodingCost::typical_core(),
            server_http_overhead: SimDuration::from_micros(120),
            client_http_overhead: SimDuration::from_micros(60),
            tls_per_byte: SimDuration::ZERO,
            json_payloads: true,
        }
    }

    /// A public-cloud HTTPS endpoint (AWS Lambda-style deployment).
    pub fn public_cloud() -> HttpProfile {
        HttpProfile {
            tcp: TcpProfile::wan_to_cloud_region(),
            encoding: EncodingCost::typical_core(),
            server_http_overhead: SimDuration::from_micros(250),
            client_http_overhead: SimDuration::from_micros(120),
            tls_per_byte: SimDuration::from_nanos(1),
            json_payloads: true,
        }
    }

    /// A lightweight RPC protocol over TCP (Nightcore-style): binary
    /// payloads, minimal framing.
    pub fn binary_rpc() -> HttpProfile {
        HttpProfile {
            tcp: TcpProfile::kernel_100g(),
            encoding: EncodingCost {
                envelope_overhead: SimDuration::from_micros(2),
                encode_per_byte: SimDuration::ZERO,
                decode_per_byte: SimDuration::ZERO,
                json_per_byte: SimDuration::ZERO,
            },
            server_http_overhead: SimDuration::from_micros(8),
            client_http_overhead: SimDuration::from_micros(4),
            tls_per_byte: SimDuration::ZERO,
            json_payloads: false,
        }
    }

    /// Number of bytes that actually cross the wire for a binary payload of
    /// `raw_bytes`.
    pub fn wire_bytes(&self, raw_bytes: usize) -> usize {
        if self.json_payloads {
            self.encoding.wire_size(raw_bytes)
        } else {
            raw_bytes + 64
        }
    }
}

impl Default for HttpProfile {
    fn default() -> Self {
        HttpProfile::cluster_gateway()
    }
}

/// One HTTP request/response exchange between a client and a server hop.
#[derive(Debug, Clone)]
pub struct HttpExchange<'a> {
    profile: &'a HttpProfile,
}

impl<'a> HttpExchange<'a> {
    /// Create an exchange calculator over `profile`.
    pub fn new(profile: &'a HttpProfile) -> HttpExchange<'a> {
        HttpExchange { profile }
    }

    /// Client-side cost of preparing a request carrying `raw_bytes` of binary
    /// payload (encoding + HTTP framing + TLS).
    pub fn client_prepare(&self, raw_bytes: usize) -> SimDuration {
        let p = self.profile;
        let encode = if p.json_payloads {
            p.encoding.encode_request(raw_bytes)
        } else {
            p.encoding.envelope_overhead
        };
        encode
            + p.client_http_overhead
            + p.tls_per_byte
                .saturating_mul(self.profile.wire_bytes(raw_bytes) as u64)
    }

    /// Server-side cost of parsing a request carrying `raw_bytes` of payload.
    pub fn server_parse(&self, raw_bytes: usize) -> SimDuration {
        let p = self.profile;
        let decode = if p.json_payloads {
            p.encoding.decode_request(raw_bytes)
        } else {
            SimDuration::ZERO
        };
        decode + p.server_http_overhead
    }

    /// End-to-end latency of a full request/response exchange with binary
    /// payloads of `request_bytes` and `response_bytes`, where the server
    /// spends `server_work` handling the request. Single hop, no queueing.
    pub fn round_trip(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        server_work: SimDuration,
    ) -> SimDuration {
        let p = self.profile;
        let request_wire = p.wire_bytes(request_bytes);
        let response_wire = p.wire_bytes(response_bytes);
        self.client_prepare(request_bytes)
            + p.tcp.one_way(request_wire)
            + self.server_parse(request_bytes)
            + server_work
            + self.client_prepare(response_bytes) // server-side encoding of the response
            + p.tcp.one_way(response_wire)
            + self.server_parse(response_bytes) // client-side decoding of the response
    }

    /// Effective goodput (original payload bytes per second) of repeatedly
    /// pushing `raw_bytes` payloads through this exchange.
    pub fn goodput_bytes_per_sec(&self, raw_bytes: usize) -> f64 {
        let t = self.round_trip(raw_bytes, raw_bytes, SimDuration::ZERO);
        2.0 * raw_bytes as f64 / t.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_wrapping_expands_wire_size() {
        let p = HttpProfile::cluster_gateway();
        assert!(p.wire_bytes(3_000_000) > 4_000_000);
        let rpc = HttpProfile::binary_rpc();
        assert!(rpc.wire_bytes(3_000_000) < 3_001_000);
    }

    #[test]
    fn http_round_trip_is_orders_of_magnitude_above_rdma() {
        let p = HttpProfile::cluster_gateway();
        let x = HttpExchange::new(&p);
        let rtt = x.round_trip(1024, 1024, SimDuration::ZERO);
        // RDMA achieves ~4 us; even an in-cluster HTTP hop is > 50 us.
        assert!(rtt.as_micros_f64() > 50.0, "HTTP RTT was {rtt}");
    }

    #[test]
    fn binary_rpc_is_faster_than_json_http() {
        let json = HttpProfile::cluster_gateway();
        let rpc = HttpProfile::binary_rpc();
        let payload = 128 * 1024;
        let t_json = HttpExchange::new(&json).round_trip(payload, payload, SimDuration::ZERO);
        let t_rpc = HttpExchange::new(&rpc).round_trip(payload, payload, SimDuration::ZERO);
        assert!(t_rpc < t_json);
    }

    #[test]
    fn public_cloud_pays_wan_latency() {
        let wan = HttpProfile::public_cloud();
        let lan = HttpProfile::cluster_gateway();
        let t_wan = HttpExchange::new(&wan).round_trip(1024, 1024, SimDuration::ZERO);
        let t_lan = HttpExchange::new(&lan).round_trip(1024, 1024, SimDuration::ZERO);
        assert!(t_wan > t_lan);
    }

    #[test]
    fn goodput_saturates_below_link_bandwidth() {
        let p = HttpProfile::cluster_gateway();
        let x = HttpExchange::new(&p);
        let goodput = x.goodput_bytes_per_sec(5 * 1024 * 1024);
        // JSON + base64 + TCP copies keep goodput well below the 12 GB/s link.
        assert!(goodput < 4.0e9, "goodput {goodput}");
        assert!(goodput > 1.0e8);
    }

    #[test]
    fn larger_payloads_cost_more() {
        let p = HttpProfile::cluster_gateway();
        let x = HttpExchange::new(&p);
        let small = x.round_trip(1024, 1024, SimDuration::ZERO);
        let large = x.round_trip(5 * 1024 * 1024, 5 * 1024 * 1024, SimDuration::ZERO);
        assert!(large > small * 20);
    }
}
