//! Kernel TCP/IP transport model.
//!
//! Unlike the RDMA fabric, every TCP message crosses the operating system
//! twice (sender and receiver syscalls, softirq processing, copies between
//! user and kernel buffers). The model charges those per-message overheads on
//! top of the same propagation/serialisation structure as the RDMA link, and
//! is calibrated so that a small-message request/response lands in the
//! 20–30 µs range of the paper's `netperf` baseline (Fig. 8).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use sim_core::{SimDuration, SimTime, VirtualClock};

/// Cost constants of the kernel TCP/IP path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TcpProfile {
    /// One-way wire latency (propagation + switching).
    pub one_way_latency: SimDuration,
    /// Sustainable stream bandwidth in bytes per second. Kernel TCP on the
    /// same 100 Gb/s link reaches a lower goodput than RDMA because of copies
    /// and segmentation.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message cost on the sending side: syscall, copy to kernel buffers,
    /// segmentation.
    pub send_overhead: SimDuration,
    /// Per-message cost on the receiving side: interrupt, softirq, copy to
    /// user space, scheduler wake-up.
    pub recv_overhead: SimDuration,
    /// Extra copy cost per byte (user/kernel crossing), on top of wire
    /// serialisation.
    pub copy_cost_per_byte: SimDuration,
    /// TCP three-way handshake plus socket setup.
    pub connection_setup: SimDuration,
}

impl TcpProfile {
    /// Kernel TCP over the evaluation cluster's 100 Gb/s link.
    pub fn kernel_100g() -> TcpProfile {
        TcpProfile {
            one_way_latency: SimDuration::from_nanos(1_700),
            // ~5.5 GB/s goodput for a single well-tuned stream.
            bandwidth_bytes_per_sec: 5.5e9,
            send_overhead: SimDuration::from_micros(4),
            recv_overhead: SimDuration::from_micros(6),
            copy_cost_per_byte: SimDuration::from_nanos(0),
            connection_setup: SimDuration::from_micros(180),
        }
    }

    /// A wide-area path to a public-cloud region (used by the AWS Lambda
    /// baseline): millisecond-scale latency, constrained per-flow bandwidth.
    pub fn wan_to_cloud_region() -> TcpProfile {
        TcpProfile {
            one_way_latency: SimDuration::from_micros(600),
            bandwidth_bytes_per_sec: 1.2e9,
            send_overhead: SimDuration::from_micros(8),
            recv_overhead: SimDuration::from_micros(10),
            copy_cost_per_byte: SimDuration::from_nanos(0),
            connection_setup: SimDuration::from_millis(2),
        }
    }

    /// Serialisation time of `bytes` on the wire.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
    }

    /// Total per-byte copy cost for a message of `bytes`.
    pub fn copy_cost(&self, bytes: usize) -> SimDuration {
        self.copy_cost_per_byte.saturating_mul(bytes as u64)
    }

    /// One-way delivery time of a message of `bytes`, excluding queueing.
    pub fn one_way(&self, bytes: usize) -> SimDuration {
        self.send_overhead
            + self.copy_cost(bytes)
            + self.serialization(bytes)
            + self.one_way_latency
            + self.recv_overhead
    }

    /// Request/response round trip with the given payload sizes — the
    /// `netperf TCP_RR` shape used as the Fig. 8 baseline.
    pub fn request_response(&self, request_bytes: usize, response_bytes: usize) -> SimDuration {
        self.one_way(request_bytes) + self.one_way(response_bytes)
    }
}

impl Default for TcpProfile {
    fn default() -> Self {
        TcpProfile::kernel_100g()
    }
}

#[derive(Debug, Default)]
struct HostState {
    egress_busy_until: SimTime,
    ingress_busy_until: SimTime,
}

/// A set of hosts connected by kernel TCP/IP over a shared switch.
#[derive(Debug)]
pub struct TcpNetwork {
    profile: TcpProfile,
    hosts: Mutex<HashMap<String, Arc<Mutex<HostState>>>>,
}

impl TcpNetwork {
    /// Create a network with the given profile.
    pub fn new(profile: TcpProfile) -> Arc<TcpNetwork> {
        Arc::new(TcpNetwork {
            profile,
            hosts: Mutex::new(HashMap::new()),
        })
    }

    /// The transport profile of this network.
    pub fn profile(&self) -> &TcpProfile {
        &self.profile
    }

    fn host(&self, name: &str) -> Arc<Mutex<HostState>> {
        Arc::clone(
            self.hosts
                .lock()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(Mutex::new(HostState::default()))),
        )
    }

    /// Open a connection between two named hosts. The caller's clock is
    /// charged the TCP handshake.
    pub fn connect(
        self: &Arc<Self>,
        client_host: &str,
        server_host: &str,
        client_clock: Arc<VirtualClock>,
        server_clock: Arc<VirtualClock>,
    ) -> TcpConnection {
        client_clock.advance(self.profile.connection_setup);
        TcpConnection {
            network: Arc::clone(self),
            client_host: client_host.to_string(),
            server_host: server_host.to_string(),
            client_clock,
            server_clock,
        }
    }

    /// Deliver `bytes` from `src` to `dst`, given the sender was ready at
    /// `ready`. Returns the arrival time of the last byte, accounting
    /// per-host egress/ingress occupancy.
    pub fn transfer(&self, src: &str, dst: &str, bytes: usize, ready: SimTime) -> SimTime {
        let ser = self.profile.serialization(bytes) + self.profile.copy_cost(bytes);
        let src_state = self.host(src);
        let depart = {
            let mut s = src_state.lock();
            let start = ready.max(s.egress_busy_until);
            let end = start + ser;
            s.egress_busy_until = end;
            end
        };
        let uncontended = depart + self.profile.one_way_latency;
        let dst_state = self.host(dst);
        let mut d = dst_state.lock();
        let arrival = uncontended.max(d.ingress_busy_until + ser);
        d.ingress_busy_until = arrival;
        arrival
    }
}

/// A connected TCP byte-message channel between a client and a server actor.
///
/// The connection does not carry real bytes — the baseline platforms only
/// need delivery *times* — but it tracks both actors' virtual clocks so that
/// request/response exchanges interleave correctly with other work.
#[derive(Debug, Clone)]
pub struct TcpConnection {
    network: Arc<TcpNetwork>,
    client_host: String,
    server_host: String,
    client_clock: Arc<VirtualClock>,
    server_clock: Arc<VirtualClock>,
}

impl TcpConnection {
    /// Send `bytes` from the client to the server; both clocks advance
    /// (sender pays the send syscall, the receiver observes the arrival).
    pub fn client_send(&self, bytes: usize) -> SimTime {
        let ready = self
            .client_clock
            .advance(self.network.profile.send_overhead + self.network.profile.copy_cost(bytes));
        let arrival = self
            .network
            .transfer(&self.client_host, &self.server_host, bytes, ready);
        self.server_clock
            .advance_to_then(arrival, self.network.profile.recv_overhead)
    }

    /// Send `bytes` from the server back to the client.
    pub fn server_send(&self, bytes: usize) -> SimTime {
        let ready = self
            .server_clock
            .advance(self.network.profile.send_overhead + self.network.profile.copy_cost(bytes));
        let arrival = self
            .network
            .transfer(&self.server_host, &self.client_host, bytes, ready);
        self.client_clock
            .advance_to_then(arrival, self.network.profile.recv_overhead)
    }

    /// Full request/response exchange initiated by the client, with the
    /// server spending `server_work` between receiving the request and
    /// sending the response. Returns the client-observed completion time.
    pub fn request_response(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        server_work: SimDuration,
    ) -> SimTime {
        self.client_send(request_bytes);
        self.server_clock.advance(server_work);
        self.server_send(response_bytes)
    }

    /// The client-side virtual clock.
    pub fn client_clock(&self) -> &Arc<VirtualClock> {
        &self.client_clock
    }

    /// The server-side virtual clock.
    pub fn server_clock(&self) -> &Arc<VirtualClock> {
        &self.server_clock
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_message_rtt_matches_netperf_range() {
        let p = TcpProfile::kernel_100g();
        let rtt = p.request_response(64, 64).as_micros_f64();
        assert!((15.0..35.0).contains(&rtt), "TCP RTT was {rtt} us");
    }

    #[test]
    fn tcp_is_slower_than_rdma_for_small_messages() {
        let tcp = TcpProfile::kernel_100g().request_response(64, 64);
        // The RDMA fabric's small-message RTT is ~3.7 us.
        assert!(tcp.as_micros_f64() > 3.0 * 3.7);
    }

    #[test]
    fn bandwidth_dominates_large_transfers() {
        let p = TcpProfile::kernel_100g();
        let t = p.one_way(64 * 1024 * 1024).as_millis_f64();
        // 64 MiB at ~5.5 GB/s ≈ 12 ms.
        assert!((10.0..16.0).contains(&t), "64 MiB one-way took {t} ms");
    }

    #[test]
    fn wan_profile_is_slower_than_cluster() {
        let lan = TcpProfile::kernel_100g();
        let wan = TcpProfile::wan_to_cloud_region();
        assert!(wan.request_response(1024, 1024) > lan.request_response(1024, 1024));
        assert!(wan.connection_setup > lan.connection_setup);
    }

    #[test]
    fn connection_charges_handshake_and_moves_clocks() {
        let net = TcpNetwork::new(TcpProfile::kernel_100g());
        let client = VirtualClock::shared();
        let server = VirtualClock::shared();
        let conn = net.connect("client", "server", Arc::clone(&client), Arc::clone(&server));
        assert_eq!(
            client.now().as_nanos(),
            net.profile().connection_setup.as_nanos()
        );
        let done = conn.request_response(1024, 1024, SimDuration::from_micros(100));
        assert!(done > client.now() - SimDuration::from_nanos(1));
        assert!(server.now() > SimTime::ZERO);
        // Client observes the full round trip including the server work.
        assert!(client.now().as_micros_f64() > 100.0);
    }

    #[test]
    fn network_transfers_serialise_on_shared_hosts() {
        let net = TcpNetwork::new(TcpProfile::kernel_100g());
        let bytes = 16 * 1024 * 1024;
        let a1 = net.transfer("a", "b", bytes, SimTime::ZERO);
        let a2 = net.transfer("a", "c", bytes, SimTime::ZERO);
        assert!(a2 > a1, "second flow must queue behind the first on egress");
    }

    #[test]
    fn zero_byte_messages_have_zero_serialization() {
        let p = TcpProfile::default();
        assert!(p.serialization(0).is_zero());
        assert!(p.one_way(0) >= p.one_way_latency);
    }
}
