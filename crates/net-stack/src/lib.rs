//! Simulated kernel TCP/IP networking and HTTP/REST request costs.
//!
//! rFaaS's central claim is that replacing HTTP/REST (and even raw TCP RPC)
//! with RDMA removes milliseconds of operating-system and copy overhead from
//! the serverless critical path. This crate models the transports that the
//! paper's baselines use:
//!
//! * [`tcp`] — a kernel TCP/IP path with socket syscall overheads and a
//!   bandwidth model, calibrated to the `netperf` baseline in Fig. 8,
//! * [`http`] — request/response costs of an HTTP/JSON API layer (gateways,
//!   REST triggers) on top of TCP,
//! * [`encoding`] — a real base64 codec plus the cost model for encoding
//!   binary payloads into JSON-safe strings, which the paper identifies as a
//!   hidden cost of commercial FaaS APIs (Sec. V-C, V-E).

pub mod encoding;
pub mod http;
pub mod tcp;

pub use encoding::{base64_decode, base64_encode, EncodingCost};
pub use http::{HttpExchange, HttpProfile};
pub use tcp::{TcpConnection, TcpNetwork, TcpProfile};
