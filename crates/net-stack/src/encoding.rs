//! Payload encoding: a real base64 codec and its cost model.
//!
//! Commercial FaaS APIs cannot accept raw binary invocation payloads: AWS
//! Lambda and OpenWhisk require the binary image data to be wrapped in a
//! base64-encoded JSON field (Sec. V-C, V-E of the paper). That inflates the
//! payload by 4/3 and burns CPU time on both sides. rFaaS transmits raw
//! bytes, which is part of its bandwidth advantage.

use serde::{Deserialize, Serialize};
use sim_core::SimDuration;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encode bytes as standard base64 with padding.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let triple = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(triple >> 18) as usize & 0x3F] as char);
        out.push(ALPHABET[(triple >> 12) as usize & 0x3F] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(triple >> 6) as usize & 0x3F] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[triple as usize & 0x3F] as char
        } else {
            '='
        });
    }
    out
}

/// Decode standard base64 (with or without padding). Returns `None` on any
/// character outside the alphabet or an impossible length.
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    fn value(c: u8) -> Option<u32> {
        match c {
            b'A'..=b'Z' => Some((c - b'A') as u32),
            b'a'..=b'z' => Some((c - b'a') as u32 + 26),
            b'0'..=b'9' => Some((c - b'0') as u32 + 52),
            b'+' => Some(62),
            b'/' => Some(63),
            _ => None,
        }
    }
    let stripped: Vec<u8> = text.bytes().filter(|&b| b != b'=').collect();
    if stripped.len() % 4 == 1 {
        return None;
    }
    let mut out = Vec::with_capacity(stripped.len() * 3 / 4);
    for chunk in stripped.chunks(4) {
        let mut acc: u32 = 0;
        for (i, &c) in chunk.iter().enumerate() {
            acc |= value(c)? << (18 - 6 * i);
        }
        out.push((acc >> 16) as u8);
        if chunk.len() > 2 {
            out.push((acc >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(acc as u8);
        }
    }
    Some(out)
}

/// Size of the base64 representation of `raw_bytes` bytes (with padding).
pub fn base64_encoded_len(raw_bytes: usize) -> usize {
    raw_bytes.div_ceil(3) * 4
}

/// CPU cost model of encoding/decoding payloads for JSON-based FaaS APIs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EncodingCost {
    /// Per-byte CPU cost of base64 encoding (measured on a ~3 GHz core,
    /// roughly 1 GB/s for a scalar implementation).
    pub encode_per_byte: SimDuration,
    /// Per-byte CPU cost of base64 decoding.
    pub decode_per_byte: SimDuration,
    /// Per-byte CPU cost of JSON string escaping/parsing around the payload.
    pub json_per_byte: SimDuration,
    /// Fixed cost of assembling the request envelope (headers, signature).
    pub envelope_overhead: SimDuration,
}

impl EncodingCost {
    /// Default cost model for a general-purpose CPU core.
    pub fn typical_core() -> EncodingCost {
        EncodingCost {
            encode_per_byte: SimDuration::from_nanos(1),
            decode_per_byte: SimDuration::from_nanos(1),
            json_per_byte: SimDuration::from_nanos(1),
            envelope_overhead: SimDuration::from_micros(40),
        }
    }

    /// Cost of preparing `raw_bytes` of binary payload for a JSON API call
    /// (client side): base64 encode + JSON envelope.
    pub fn encode_request(&self, raw_bytes: usize) -> SimDuration {
        self.envelope_overhead
            + (self.encode_per_byte + self.json_per_byte).saturating_mul(raw_bytes as u64)
    }

    /// Cost of unpacking a JSON API payload of `raw_bytes` original bytes
    /// (server side): JSON parse + base64 decode.
    pub fn decode_request(&self, raw_bytes: usize) -> SimDuration {
        (self.decode_per_byte + self.json_per_byte).saturating_mul(raw_bytes as u64)
    }

    /// Wire size of a JSON-wrapped binary payload of `raw_bytes`.
    pub fn wire_size(&self, raw_bytes: usize) -> usize {
        // base64 expansion plus a small JSON envelope.
        base64_encoded_len(raw_bytes) + 256
    }
}

impl Default for EncodingCost {
    fn default() -> Self {
        EncodingCost::typical_core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ascii() {
        let data = b"rFaaS: RDMA serverless".to_vec();
        let encoded = base64_encode(&data);
        assert_eq!(base64_decode(&encoded).unwrap(), data);
    }

    #[test]
    fn known_vectors() {
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zm9vYmE=").unwrap(), b"fooba");
        assert_eq!(base64_decode("Zm9vYmE").unwrap(), b"fooba");
    }

    #[test]
    fn round_trip_binary() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let encoded = base64_encode(&data);
        assert_eq!(encoded.len(), base64_encoded_len(data.len()));
        assert_eq!(base64_decode(&encoded).unwrap(), data);
    }

    #[test]
    fn invalid_input_rejected() {
        assert!(base64_decode("!!!!").is_none());
        assert!(base64_decode("A").is_none());
        assert!(base64_decode("Zm9v YmFy").is_none());
    }

    #[test]
    fn expansion_factor_is_four_thirds() {
        let len = base64_encoded_len(3 * 1024 * 1024);
        assert_eq!(len, 4 * 1024 * 1024);
    }

    #[test]
    fn encoding_cost_scales_with_payload() {
        let c = EncodingCost::typical_core();
        let small = c.encode_request(1024);
        let large = c.encode_request(1024 * 1024);
        assert!(large > small * 10);
        assert!(c.decode_request(0).is_zero());
        assert!(c.wire_size(3_000_000) > 4_000_000);
    }

    proptest::proptest! {
        #[test]
        fn prop_round_trip(data: Vec<u8>) {
            let encoded = base64_encode(&data);
            proptest::prop_assert_eq!(base64_decode(&encoded).unwrap(), data);
        }

        #[test]
        fn prop_encoded_len(data: Vec<u8>) {
            proptest::prop_assert_eq!(base64_encode(&data).len(), base64_encoded_len(data.len()));
        }
    }
}
