//! Point-to-point communication and the world/rank runtime.

use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sim_core::{SimDuration, SimTime, VirtualClock};

/// Communication cost constants of the message-passing layer.
#[derive(Debug, Clone)]
pub struct MpiCostModel {
    /// One-way message latency (same switch as the RDMA fabric).
    pub latency: SimDuration,
    /// Link bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-message software overhead on each side (matching, progress engine).
    pub per_message_overhead: SimDuration,
}

impl MpiCostModel {
    /// MPI over the evaluation cluster's 100 Gb/s RoCE link.
    pub fn cluster_100g() -> MpiCostModel {
        MpiCostModel {
            latency: SimDuration::from_nanos(1_700),
            bandwidth_bytes_per_sec: 11_686.4 * 1024.0 * 1024.0,
            per_message_overhead: SimDuration::from_nanos(450),
        }
    }

    /// Transfer duration of `bytes` on the wire.
    pub fn serialization(&self, bytes: usize) -> SimDuration {
        if bytes == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_secs_f64(bytes as f64 / self.bandwidth_bytes_per_sec)
        }
    }
}

impl Default for MpiCostModel {
    fn default() -> Self {
        MpiCostModel::cluster_100g()
    }
}

/// A message in flight between two ranks.
#[derive(Debug, Clone)]
pub(crate) struct Message {
    pub(crate) source: usize,
    pub(crate) tag: u32,
    pub(crate) data: Vec<u8>,
    pub(crate) arrival: SimTime,
}

/// Result of one rank's execution.
#[derive(Debug, Clone)]
pub struct RankResult<R> {
    /// The rank index.
    pub rank: usize,
    /// The value the rank's body returned.
    pub value: R,
    /// The rank's virtual clock at the end of its body.
    pub finish_time: SimTime,
}

/// The handle a rank body uses to communicate.
pub struct Rank {
    rank: usize,
    size: usize,
    clock: Arc<VirtualClock>,
    cost: MpiCostModel,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    // Messages received but not yet requested (out-of-order matching).
    stash: Mutex<Vec<Message>>,
}

impl Rank {
    /// This rank's index in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// The rank's virtual clock.
    pub fn clock(&self) -> &Arc<VirtualClock> {
        &self.clock
    }

    /// Charge local computation time.
    pub fn compute(&self, work: SimDuration) {
        self.clock.advance(work);
    }

    /// Send `data` to `dest` with the given tag (non-blocking, eager).
    pub fn send(&self, dest: usize, tag: u32, data: &[u8]) {
        assert!(dest < self.size, "destination rank {dest} out of range");
        let ready = self.clock.advance(self.cost.per_message_overhead);
        let arrival = ready + self.cost.latency + self.cost.serialization(data.len());
        let message = Message {
            source: self.rank,
            tag,
            data: data.to_vec(),
            arrival,
        };
        self.senders[dest]
            .send(message)
            .expect("rank channel closed");
    }

    /// Send a slice of `f64`s.
    pub fn send_f64(&self, dest: usize, tag: u32, data: &[f64]) {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.send(dest, tag, &bytes);
    }

    /// Blocking receive of the next message from `source` with `tag`.
    pub fn recv(&self, source: usize, tag: u32) -> Vec<u8> {
        // First look in the stash for an already-delivered match.
        {
            let mut stash = self.stash.lock();
            if let Some(pos) = stash
                .iter()
                .position(|m| m.source == source && m.tag == tag)
            {
                let message = stash.remove(pos);
                self.clock
                    .advance_to_then(message.arrival, self.cost.per_message_overhead);
                return message.data;
            }
        }
        loop {
            let message = self.receiver.recv().expect("rank channel closed");
            if message.source == source && message.tag == tag {
                self.clock
                    .advance_to_then(message.arrival, self.cost.per_message_overhead);
                return message.data;
            }
            self.stash.lock().push(message);
        }
    }

    /// Receive a slice of `f64`s.
    pub fn recv_f64(&self, source: usize, tag: u32) -> Vec<f64> {
        self.recv(source, tag)
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect()
    }
}

/// The MPI world: spawns one thread per rank and runs a body on each.
#[derive(Debug, Clone, Default)]
pub struct MpiWorld {
    cost: MpiCostModel,
}

impl MpiWorld {
    /// A world with the default cluster cost model.
    pub fn new() -> MpiWorld {
        MpiWorld {
            cost: MpiCostModel::default(),
        }
    }

    /// A world with an explicit cost model.
    pub fn with_cost_model(cost: MpiCostModel) -> MpiWorld {
        MpiWorld { cost }
    }

    /// Run `body` on `size` ranks and collect each rank's result, sorted by
    /// rank index.
    pub fn run<R, F>(&self, size: usize, body: F) -> Vec<RankResult<R>>
    where
        R: Send,
        F: Fn(&Rank) -> R + Send + Sync,
    {
        assert!(size > 0, "world size must be positive");
        let mut senders = Vec::with_capacity(size);
        let mut receivers = Vec::with_capacity(size);
        for _ in 0..size {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let body = &body;
        let cost = &self.cost;
        let senders = &senders;
        let mut results: Vec<RankResult<R>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(size);
            for (rank_idx, receiver) in receivers.into_iter().enumerate() {
                handles.push(scope.spawn(move || {
                    let rank = Rank {
                        rank: rank_idx,
                        size,
                        clock: VirtualClock::shared(),
                        cost: cost.clone(),
                        senders: senders.to_vec(),
                        receiver,
                        stash: Mutex::new(Vec::new()),
                    };
                    let value = body(&rank);
                    RankResult {
                        rank: rank_idx,
                        value,
                        finish_time: rank.clock.now(),
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        });
        results.sort_by_key(|r| r.rank);
        results
    }

    /// Parallel-application makespan: the latest finish time over all ranks.
    pub fn makespan<R>(results: &[RankResult<R>]) -> SimTime {
        results
            .iter()
            .map(|r| r.finish_time)
            .max()
            .unwrap_or(SimTime::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ping_pong_moves_data_and_time() {
        let world = MpiWorld::new();
        let results = world.run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 7, &[1, 2, 3, 4]);
                rank.recv(1, 8)
            } else {
                let data = rank.recv(0, 7);
                rank.send(0, 8, &data);
                data
            }
        });
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].value, vec![1, 2, 3, 4]);
        assert_eq!(results[1].value, vec![1, 2, 3, 4]);
        // A ping-pong costs at least two latencies on rank 0's clock.
        assert!(results[0].finish_time.as_micros_f64() > 3.0);
    }

    #[test]
    fn f64_send_recv_round_trip() {
        let world = MpiWorld::new();
        let results = world.run(2, |rank| {
            if rank.rank() == 0 {
                rank.send_f64(1, 1, &[1.5, -2.5, 1e300]);
                Vec::new()
            } else {
                rank.recv_f64(0, 1)
            }
        });
        assert_eq!(results[1].value, vec![1.5, -2.5, 1e300]);
    }

    #[test]
    fn out_of_order_tags_are_matched() {
        let world = MpiWorld::new();
        let results = world.run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 100, b"first");
                rank.send(1, 200, b"second");
                0usize
            } else {
                // Receive in reverse tag order: the stash must hold "first".
                let second = rank.recv(0, 200);
                let first = rank.recv(0, 100);
                assert_eq!(second, b"second");
                assert_eq!(first, b"first");
                first.len() + second.len()
            }
        });
        assert_eq!(results[1].value, 11);
    }

    #[test]
    fn compute_advances_only_local_clock() {
        let world = MpiWorld::new();
        let results = world.run(2, |rank| {
            if rank.rank() == 0 {
                rank.compute(SimDuration::from_millis(5));
            }
            rank.clock().now()
        });
        assert!(results[0].value.as_millis_f64() >= 5.0);
        assert!(results[1].value.as_millis_f64() < 1.0);
        assert!(MpiWorld::makespan(&results).as_millis_f64() >= 5.0);
    }

    #[test]
    fn large_messages_charge_bandwidth() {
        let world = MpiWorld::new();
        let payload = vec![0u8; 16 * 1024 * 1024];
        let results = world.run(2, |rank| {
            if rank.rank() == 0 {
                rank.send(1, 0, &payload);
                SimDuration::ZERO
            } else {
                let start = rank.clock().now();
                rank.recv(0, 0);
                rank.clock().now().saturating_since(start)
            }
        });
        let transfer = results[1].value.as_millis_f64();
        // 16 MiB at ~12 GB/s ≈ 1.3 ms.
        assert!(
            (1.0..2.5).contains(&transfer),
            "16 MiB transfer {transfer} ms"
        );
    }

    #[test]
    #[should_panic]
    fn zero_rank_world_panics() {
        MpiWorld::new().run(0, |_| ());
    }
}
