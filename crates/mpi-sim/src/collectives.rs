//! Collective operations: barrier, broadcast, gather, all-reduce.
//!
//! Implemented with the flat gather-to-root + broadcast pattern, which is
//! accurate enough for the rank counts of the paper's experiments (16–64) and
//! keeps the virtual-time accounting honest: every collective synchronises
//! the participating clocks to the latest participant plus the communication
//! cost, which is exactly the bulk-synchronous behaviour the Jacobi benchmark
//! relies on.

use crate::comm::Rank;

const TAG_BARRIER_UP: u32 = 0xB000_0001;
const TAG_BARRIER_DOWN: u32 = 0xB000_0002;
const TAG_GATHER: u32 = 0xB000_0003;
const TAG_BCAST: u32 = 0xB000_0004;
const TAG_REDUCE: u32 = 0xB000_0005;

impl Rank {
    /// Synchronise all ranks; no rank leaves the barrier before every rank
    /// has entered it.
    pub fn barrier(&self) {
        if self.size() == 1 {
            return;
        }
        if self.rank() == 0 {
            for source in 1..self.size() {
                let _ = self.recv(source, TAG_BARRIER_UP);
            }
            for dest in 1..self.size() {
                self.send(dest, TAG_BARRIER_DOWN, &[]);
            }
        } else {
            self.send(0, TAG_BARRIER_UP, &[]);
            let _ = self.recv(0, TAG_BARRIER_DOWN);
        }
    }

    /// Broadcast `data` from `root` to every rank; returns the broadcast
    /// value on all ranks.
    pub fn broadcast_f64(&self, root: usize, data: &[f64]) -> Vec<f64> {
        if self.size() == 1 {
            return data.to_vec();
        }
        if self.rank() == root {
            for dest in 0..self.size() {
                if dest != root {
                    self.send_f64(dest, TAG_BCAST, data);
                }
            }
            data.to_vec()
        } else {
            self.recv_f64(root, TAG_BCAST)
        }
    }

    /// Gather every rank's `data` at `root`; returns `Some(all)` (in rank
    /// order, concatenated) at the root and `None` elsewhere.
    pub fn gather_f64(&self, root: usize, data: &[f64]) -> Option<Vec<Vec<f64>>> {
        if self.rank() == root {
            let mut all: Vec<Vec<f64>> = vec![Vec::new(); self.size()];
            all[root] = data.to_vec();
            for (source, slot) in all.iter_mut().enumerate() {
                if source != root {
                    *slot = self.recv_f64(source, TAG_GATHER);
                }
            }
            Some(all)
        } else {
            self.send_f64(root, TAG_GATHER, data);
            None
        }
    }

    /// Element-wise sum all-reduce over `f64` vectors; every rank receives
    /// the reduced vector.
    pub fn allreduce_sum_f64(&self, data: &[f64]) -> Vec<f64> {
        if self.size() == 1 {
            return data.to_vec();
        }
        if self.rank() == 0 {
            let mut sum = data.to_vec();
            for source in 1..self.size() {
                let contribution = self.recv_f64(source, TAG_REDUCE);
                assert_eq!(contribution.len(), sum.len(), "allreduce length mismatch");
                for (s, c) in sum.iter_mut().zip(contribution.iter()) {
                    *s += c;
                }
            }
            self.broadcast_f64(0, &sum)
        } else {
            self.send_f64(0, TAG_REDUCE, data);
            self.broadcast_f64(0, &[])
        }
    }

    /// Maximum of one scalar over all ranks (used to compute makespans of
    /// bulk-synchronous phases from inside the application).
    pub fn allreduce_max(&self, value: f64) -> f64 {
        let gathered = self.gather_f64(0, &[value]);
        let max = match gathered {
            Some(all) => all
                .iter()
                .flat_map(|v| v.iter().copied())
                .fold(f64::MIN, f64::max),
            None => 0.0,
        };
        self.broadcast_f64(0, &[max])[0]
    }
}

#[cfg(test)]
mod tests {
    use crate::comm::MpiWorld;
    use sim_core::SimDuration;

    #[test]
    fn barrier_synchronises_clocks() {
        let world = MpiWorld::new();
        let results = world.run(4, |rank| {
            // Rank 2 does 10 ms of work before the barrier; everyone must
            // observe at least that much time after the barrier.
            if rank.rank() == 2 {
                rank.compute(SimDuration::from_millis(10));
            }
            rank.barrier();
            rank.clock().now()
        });
        for r in &results {
            assert!(
                r.value.as_millis_f64() >= 10.0,
                "rank {} left the barrier at {}",
                r.rank,
                r.value
            );
        }
    }

    #[test]
    fn broadcast_delivers_root_data() {
        let world = MpiWorld::new();
        let results = world.run(5, |rank| {
            let data = if rank.rank() == 2 {
                vec![3.25, 1.0]
            } else {
                vec![]
            };
            rank.broadcast_f64(2, &data)
        });
        for r in results {
            assert_eq!(r.value, vec![3.25, 1.0]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let world = MpiWorld::new();
        let results = world.run(4, |rank| rank.gather_f64(0, &[rank.rank() as f64]));
        let root = results[0].value.as_ref().unwrap();
        assert_eq!(root.len(), 4);
        for (i, v) in root.iter().enumerate() {
            assert_eq!(v, &vec![i as f64]);
        }
        for r in &results[1..] {
            assert!(r.value.is_none());
        }
    }

    #[test]
    fn allreduce_sums_elementwise() {
        let world = MpiWorld::new();
        let results = world.run(6, |rank| rank.allreduce_sum_f64(&[1.0, rank.rank() as f64]));
        let expected_second: f64 = (0..6).map(|i| i as f64).sum();
        for r in results {
            assert_eq!(r.value, vec![6.0, expected_second]);
        }
    }

    #[test]
    fn allreduce_max_finds_global_maximum() {
        let world = MpiWorld::new();
        let results = world.run(8, |rank| rank.allreduce_max(rank.rank() as f64 * 1.5));
        for r in results {
            assert_eq!(r.value, 10.5);
        }
    }

    #[test]
    fn collectives_work_with_a_single_rank() {
        let world = MpiWorld::new();
        let results = world.run(1, |rank| {
            rank.barrier();
            let b = rank.broadcast_f64(0, &[1.0]);
            let s = rank.allreduce_sum_f64(&[2.0]);
            (b, s)
        });
        assert_eq!(results[0].value, (vec![1.0], vec![2.0]));
    }
}
