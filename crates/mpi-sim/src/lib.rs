//! A rank-per-thread message-passing runtime with virtual-time accounting.
//!
//! The paper's HPC experiments (Sec. V-G) accelerate MPI applications with
//! rFaaS: every MPI rank offloads half of its work to a leased function. This
//! crate provides the message-passing substrate those experiments run on —
//! ranks are OS threads, point-to-point messages and collectives move real
//! data through channels, and communication time is charged on per-rank
//! [`VirtualClock`](sim_core::VirtualClock)s using the same latency/bandwidth constants as the RDMA
//! fabric (MPI on the evaluation cluster runs over the same 100 Gb/s link).

pub mod collectives;
pub mod comm;

pub use comm::{MpiCostModel, MpiWorld, Rank, RankResult};
