//! Concrete baseline platform models.
//!
//! Each constructor assembles the invocation path of one platform from its
//! architectural components (Sec. II-B and V-C of the paper) and calibrates
//! the component costs so the end-to-end warm-invocation latency and goodput
//! match the paper's measurements (Fig. 1).

use serde::{Deserialize, Serialize};
use sim_core::{DeterministicRng, SimDuration};

use crate::path::{InvocationPath, PathComponent};

/// A baseline FaaS platform: its warm invocation path and cold-start model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BaselinePlatform {
    /// Platform name as used in figures ("AWS", "OpenWhisk", "nightcore").
    pub name: String,
    /// The warm invocation path.
    pub path: InvocationPath,
    /// Typical cold-start penalty added to the first invocation of a sandbox.
    pub cold_start: SimDuration,
    /// Maximum payload the platform API accepts (bytes of raw data); larger
    /// payloads must detour through cloud storage. `None` means unlimited.
    pub max_payload: Option<usize>,
}

impl BaselinePlatform {
    /// Median warm round-trip time for the given payload sizes and function
    /// execution time.
    pub fn invoke_rtt(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        function_work: SimDuration,
    ) -> SimDuration {
        self.path
            .round_trip(request_bytes, response_bytes, function_work)
    }

    /// A randomised sample of the warm round-trip time.
    pub fn sample_rtt(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        function_work: SimDuration,
        rng: &mut DeterministicRng,
    ) -> SimDuration {
        self.path
            .sample_round_trip(request_bytes, response_bytes, function_work, rng)
    }

    /// Cold round-trip time (sandbox start + warm path).
    pub fn cold_rtt(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        function_work: SimDuration,
    ) -> SimDuration {
        self.cold_start + self.invoke_rtt(request_bytes, response_bytes, function_work)
    }

    /// Whether the platform accepts a payload of `bytes` through its API.
    pub fn accepts_payload(&self, bytes: usize) -> bool {
        self.max_payload.map(|m| bytes <= m).unwrap_or(true)
    }

    /// Sustained goodput (raw payload bytes per second) for a payload size.
    pub fn goodput_bytes_per_sec(&self, bytes: usize) -> f64 {
        self.path.goodput_bytes_per_sec(bytes)
    }
}

/// AWS Lambda invoked through an HTTP endpoint from a VM in the same region
/// (the paper's deployment): WAN hop, API gateway, the centralized placement
/// ("invoke") service, a worker manager and the Firecracker runtime, with
/// JSON/base64 payloads.
pub fn aws_lambda() -> BaselinePlatform {
    BaselinePlatform {
        name: "AWS Lambda".to_string(),
        path: InvocationPath {
            components: vec![
                PathComponent::both("vpc-network", SimDuration::from_micros(600), 4.0),
                PathComponent::both("api-gateway", SimDuration::from_micros(2_200), 12.0),
                PathComponent::request_only(
                    "auth-and-signature",
                    SimDuration::from_micros(800),
                    0.5,
                ),
                PathComponent::request_only(
                    "invoke-service-placement",
                    SimDuration::from_micros(9_500),
                    1.0,
                ),
                PathComponent::request_only("worker-manager", SimDuration::from_micros(1_200), 0.5),
                PathComponent::both(
                    "runtime-interface(base64+json)",
                    SimDuration::from_micros(1_200),
                    24.0,
                ),
            ],
            payload_expansion: 4.0 / 3.0,
            jitter: 0.35,
        },
        // Firecracker-based cold starts for a native runtime: ~250 ms.
        cold_start: SimDuration::from_millis(250),
        // 6 MB synchronous invocation payload limit.
        max_payload: Some(6 * 1024 * 1024),
    }
}

/// Apache OpenWhisk deployed standalone on the evaluation cluster: nginx API
/// gateway, controller with load balancer, Kafka message bus, invoker and a
/// Docker action runtime that receives parameters through `argc/argv`.
pub fn openwhisk() -> BaselinePlatform {
    BaselinePlatform {
        name: "OpenWhisk".to_string(),
        path: InvocationPath {
            components: vec![
                PathComponent::both("nginx-api-gateway", SimDuration::from_millis(6), 30.0),
                PathComponent::request_only(
                    "controller-loadbalancer",
                    SimDuration::from_millis(35),
                    50.0,
                ),
                PathComponent::request_only(
                    "kafka-message-bus",
                    SimDuration::from_millis(28),
                    80.0,
                ),
                PathComponent::request_only("invoker", SimDuration::from_millis(18), 40.0),
                PathComponent::both("docker-action-runtime", SimDuration::from_millis(12), 60.0),
            ],
            payload_expansion: 4.0 / 3.0,
            jitter: 0.25,
        },
        cold_start: SimDuration::from_millis(800),
        // Inputs are passed through argv and limited to ~125 kB (Sec. V-C).
        max_payload: Some(125 * 1024),
    }
}

/// Nightcore on the same cluster: a local binary RPC gateway, a dispatcher
/// and persistent worker processes — no JSON, no containers on the hot path,
/// but still two kernel TCP crossings per hop.
pub fn nightcore() -> BaselinePlatform {
    BaselinePlatform {
        name: "nightcore".to_string(),
        path: InvocationPath {
            components: vec![
                PathComponent::both("rpc-gateway", SimDuration::from_micros(55), 1.1),
                PathComponent::request_only("dispatcher", SimDuration::from_micros(35), 0.5),
                PathComponent::both("worker-ipc", SimDuration::from_micros(30), 1.1),
            ],
            payload_expansion: 1.0,
            jitter: 0.12,
        },
        cold_start: SimDuration::from_millis(60),
        max_payload: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: usize = 1024;
    const MB: usize = 1024 * 1024;

    #[test]
    fn aws_small_payload_rtt_matches_paper() {
        let aws = aws_lambda();
        let rtt = aws.invoke_rtt(KB, KB, SimDuration::ZERO).as_millis_f64();
        // Paper: 19.64 ms for ~1 kB on AWS Lambda.
        assert!((17.0..22.0).contains(&rtt), "AWS 1 kB RTT {rtt} ms");
    }

    #[test]
    fn aws_large_payload_rtt_matches_paper() {
        let aws = aws_lambda();
        let rtt = aws
            .invoke_rtt(5 * MB, 5 * MB, SimDuration::ZERO)
            .as_millis_f64();
        // Paper: RTT grows to over 600 ms at 5 MB.
        assert!((500.0..800.0).contains(&rtt), "AWS 5 MB RTT {rtt} ms");
        let goodput = aws.goodput_bytes_per_sec(5 * MB) / 1e6;
        // Paper: 17.21 MB/s effective goodput.
        assert!(
            (13.0..22.0).contains(&goodput),
            "AWS goodput {goodput} MB/s"
        );
    }

    #[test]
    fn openwhisk_matches_paper() {
        let ow = openwhisk();
        let rtt = ow.invoke_rtt(KB, KB, SimDuration::ZERO).as_millis_f64();
        // Paper: 119.18 ms.
        assert!((105.0..135.0).contains(&rtt), "OpenWhisk 1 kB RTT {rtt} ms");
        let goodput = ow.goodput_bytes_per_sec(100 * KB) / 1e6;
        // Paper: 1.79 MB/s.
        assert!(
            (1.2..2.6).contains(&goodput),
            "OpenWhisk goodput {goodput} MB/s"
        );
        // OpenWhisk cannot accept larger inputs than ~125 kB.
        assert!(ow.accepts_payload(100 * KB));
        assert!(!ow.accepts_payload(MB));
    }

    #[test]
    fn nightcore_matches_paper() {
        let nc = nightcore();
        let rtt = nc.invoke_rtt(KB, KB, SimDuration::ZERO).as_micros_f64();
        // Paper: 209.45 us.
        assert!((180.0..240.0).contains(&rtt), "nightcore 1 kB RTT {rtt} us");
        let goodput = nc.goodput_bytes_per_sec(5 * MB) / 1e6;
        // Paper: 453.72 MB/s.
        assert!(
            (350.0..550.0).contains(&goodput),
            "nightcore goodput {goodput} MB/s"
        );
    }

    #[test]
    fn platform_ordering_matches_figure_1() {
        // nightcore < AWS < OpenWhisk in latency; the reverse in goodput.
        let work = SimDuration::ZERO;
        let nc = nightcore().invoke_rtt(KB, KB, work);
        let aws = aws_lambda().invoke_rtt(KB, KB, work);
        let ow = openwhisk().invoke_rtt(KB, KB, work);
        assert!(nc < aws && aws < ow);
        assert!(nightcore().goodput_bytes_per_sec(MB) > aws_lambda().goodput_bytes_per_sec(MB));
        assert!(aws_lambda().goodput_bytes_per_sec(MB) > openwhisk().goodput_bytes_per_sec(MB));
    }

    #[test]
    fn rfaas_beats_every_baseline_by_orders_of_magnitude() {
        // The RDMA fabric's small-message RTT is ~3.7 us, rFaaS hot ~4 us;
        // the paper reports 695x-3692x over AWS and 23x-39x over Nightcore.
        let rfaas_hot_us = 4.0;
        let aws_ratio = aws_lambda()
            .invoke_rtt(KB, KB, SimDuration::ZERO)
            .as_micros_f64()
            / rfaas_hot_us;
        let nc_ratio = nightcore()
            .invoke_rtt(KB, KB, SimDuration::ZERO)
            .as_micros_f64()
            / rfaas_hot_us;
        let ow_ratio = openwhisk()
            .invoke_rtt(KB, KB, SimDuration::ZERO)
            .as_micros_f64()
            / rfaas_hot_us;
        assert!(aws_ratio > 600.0, "AWS ratio {aws_ratio}");
        assert!(
            (20.0..70.0).contains(&nc_ratio),
            "nightcore ratio {nc_ratio}"
        );
        assert!(ow_ratio > 5_000.0, "OpenWhisk ratio {ow_ratio}");
    }

    #[test]
    fn cold_starts_dominate_first_invocations() {
        for p in [aws_lambda(), openwhisk(), nightcore()] {
            assert!(
                p.cold_rtt(KB, KB, SimDuration::ZERO) > p.invoke_rtt(KB, KB, SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn samples_are_deterministic_per_seed() {
        let aws = aws_lambda();
        let mut r1 = DeterministicRng::new(5);
        let mut r2 = DeterministicRng::new(5);
        for _ in 0..32 {
            assert_eq!(
                aws.sample_rtt(KB, KB, SimDuration::ZERO, &mut r1),
                aws.sample_rtt(KB, KB, SimDuration::ZERO, &mut r2)
            );
        }
    }
}
