//! Invocation-path modelling.
//!
//! A warm FaaS invocation traverses a pipeline of components — gateways,
//! controllers, queues, runtimes — each adding fixed latency and, for the
//! components that copy or re-encode the payload, a per-byte cost. The
//! end-to-end round-trip time is the sum over the request and response
//! directions plus the function execution itself.

use serde::{Deserialize, Serialize};
use sim_core::{DeterministicRng, SimDuration};

/// One hop/component on the invocation path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathComponent {
    /// Human-readable component name (gateway, controller, message bus, ...).
    pub name: String,
    /// Fixed processing latency per traversal.
    pub fixed: SimDuration,
    /// Additional cost per payload byte in nanoseconds (copies, encoding,
    /// serialisation). Fractional values capture multi-GB/s components.
    pub per_byte_ns: f64,
    /// Whether the component sits on the request path.
    pub on_request: bool,
    /// Whether the component sits on the response path.
    pub on_response: bool,
}

impl PathComponent {
    /// A component traversed in both directions.
    pub fn both(name: &str, fixed: SimDuration, per_byte_ns: f64) -> PathComponent {
        PathComponent {
            name: name.to_string(),
            fixed,
            per_byte_ns,
            on_request: true,
            on_response: true,
        }
    }

    /// A component traversed only on the request path.
    pub fn request_only(name: &str, fixed: SimDuration, per_byte_ns: f64) -> PathComponent {
        PathComponent {
            on_request: true,
            on_response: false,
            ..PathComponent::both(name, fixed, per_byte_ns)
        }
    }

    fn cost(&self, bytes: usize) -> SimDuration {
        self.fixed + SimDuration::from_nanos((self.per_byte_ns * bytes as f64).round() as u64)
    }
}

/// The full invocation path of one platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvocationPath {
    /// Components in traversal order.
    pub components: Vec<PathComponent>,
    /// Payload expansion factor on the wire (4/3 for base64-in-JSON APIs,
    /// 1.0 for binary protocols).
    pub payload_expansion: f64,
    /// Relative standard deviation of the total latency (tail behaviour);
    /// commercial clouds exhibit much heavier tails than a quiet cluster.
    pub jitter: f64,
}

impl InvocationPath {
    /// Wire bytes for a raw payload of `bytes`.
    pub fn wire_bytes(&self, bytes: usize) -> usize {
        (bytes as f64 * self.payload_expansion).ceil() as usize
    }

    /// Deterministic (median) round-trip time for the given payload sizes and
    /// function execution time.
    pub fn round_trip(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        function_work: SimDuration,
    ) -> SimDuration {
        let request_wire = self.wire_bytes(request_bytes);
        let response_wire = self.wire_bytes(response_bytes);
        let mut total = function_work;
        for c in &self.components {
            if c.on_request {
                total += c.cost(request_wire);
            }
            if c.on_response {
                total += c.cost(response_wire);
            }
        }
        total
    }

    /// A randomised sample of the round-trip time, with multiplicative jitter
    /// reflecting queueing noise and shared-tenant interference.
    pub fn sample_round_trip(
        &self,
        request_bytes: usize,
        response_bytes: usize,
        function_work: SimDuration,
        rng: &mut DeterministicRng,
    ) -> SimDuration {
        let median = self.round_trip(request_bytes, response_bytes, function_work);
        // Log-normal-ish multiplicative noise, never below 85% of the median.
        let factor = (1.0 + rng.normal(0.0, self.jitter).abs()).max(0.85);
        median.mul_f64(factor)
    }

    /// Effective goodput in bytes of raw payload per second when streaming
    /// `bytes`-sized requests and responses back to back.
    pub fn goodput_bytes_per_sec(&self, bytes: usize) -> f64 {
        let rtt = self.round_trip(bytes, bytes, SimDuration::ZERO);
        2.0 * bytes as f64 / rtt.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_path() -> InvocationPath {
        InvocationPath {
            components: vec![
                PathComponent::both("gateway", SimDuration::from_micros(100), 1.0),
                PathComponent::request_only("scheduler", SimDuration::from_micros(50), 0.0),
            ],
            payload_expansion: 4.0 / 3.0,
            jitter: 0.1,
        }
    }

    #[test]
    fn round_trip_sums_directional_components() {
        let path = simple_path();
        let rtt = path.round_trip(0, 0, SimDuration::ZERO);
        // gateway twice + scheduler once.
        assert_eq!(rtt.as_micros_f64(), 250.0);
        let with_work = path.round_trip(0, 0, SimDuration::from_micros(10));
        assert_eq!(with_work.as_micros_f64(), 260.0);
    }

    #[test]
    fn payload_expansion_inflates_wire_bytes() {
        let path = simple_path();
        assert_eq!(path.wire_bytes(3000), 4000);
        let small = path.round_trip(0, 0, SimDuration::ZERO);
        let large = path.round_trip(3000, 0, SimDuration::ZERO);
        // 4000 wire bytes * 1 ns on gateway (request) + gateway fixed costs.
        assert_eq!((large - small).as_nanos(), 4_000);
    }

    #[test]
    fn samples_hover_above_the_median() {
        let path = simple_path();
        let mut rng = DeterministicRng::new(3);
        let median = path.round_trip(1024, 1024, SimDuration::ZERO);
        let mut higher = 0;
        for _ in 0..200 {
            let s = path.sample_round_trip(1024, 1024, SimDuration::ZERO, &mut rng);
            assert!(s >= median.mul_f64(0.8));
            if s > median {
                higher += 1;
            }
        }
        assert!(higher > 100, "jitter should mostly inflate latency");
    }

    #[test]
    fn goodput_decreases_with_fixed_overhead() {
        let path = simple_path();
        let small = path.goodput_bytes_per_sec(1024);
        let large = path.goodput_bytes_per_sec(1024 * 1024);
        assert!(large > small, "larger payloads amortise fixed costs");
    }
}
