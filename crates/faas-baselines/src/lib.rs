//! Baseline FaaS platform models: AWS Lambda, OpenWhisk and Nightcore.
//!
//! The paper compares rFaaS against a commercial platform (AWS Lambda with a
//! native C++ runtime) and two open-source platforms deployed on the same
//! cluster (Apache OpenWhisk and Nightcore). Re-hosting those systems is not
//! possible here, so this crate models their *invocation paths*: the sequence
//! of hops, copies, queueing layers and payload encodings a warm invocation
//! traverses (Sec. II-B, Fig. 3). Component costs are calibrated so that the
//! end-to-end numbers match the measurements reported in Fig. 1:
//!
//! | platform  | small-payload RTT | sustained goodput |
//! |-----------|------------------:|------------------:|
//! | AWS Lambda| 19.64 ms          | 17.21 MB/s        |
//! | OpenWhisk | 119.18 ms         | 1.79 MB/s         |
//! | Nightcore | 209.45 µs         | 453.72 MB/s       |
//!
//! What matters for the reproduction is the *architecture* each number stems
//! from: Lambda pays a WAN round trip, a centralized placement service and a
//! JSON/base64 API; OpenWhisk adds an API gateway, a controller, a Kafka hop
//! and a Docker action runtime; Nightcore strips the path down to a local
//! binary RPC gateway but still crosses the kernel TCP stack twice.

pub mod path;
pub mod platforms;

pub use path::{InvocationPath, PathComponent};
pub use platforms::{aws_lambda, nightcore, openwhisk, BaselinePlatform};
