//! Latency histograms with logarithmic buckets.
//!
//! The benchmark harnesses accumulate tens of thousands of invocation
//! latencies; a log-bucketed histogram keeps memory bounded while still
//! supporting accurate-enough percentile queries for reporting.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Number of sub-buckets per power-of-two bucket (resolution ~3%).
const SUB_BUCKETS: usize = 32;
/// Number of power-of-two buckets (covers 1 ns .. ~18 s).
const MAGNITUDES: usize = 35;

/// A log-bucketed latency histogram over nanosecond values.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; MAGNITUDES * SUB_BUCKETS],
            count: 0,
            sum_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
        }
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        let ns = d.as_nanos();
        let idx = Self::bucket_index(ns);
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_ns += ns as u128;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest recorded value; zero if empty.
    pub fn min(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos(self.min_ns)
        }
    }

    /// Largest recorded value; zero if empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_nanos(self.max_ns)
    }

    /// Arithmetic mean of recorded values; zero if empty.
    pub fn mean(&self) -> SimDuration {
        if self.count == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_nanos((self.sum_ns / self.count as u128) as u64)
        }
    }

    /// Approximate percentile (`q` in [0, 100]); zero if empty.
    pub fn percentile(&self, q: f64) -> SimDuration {
        if self.count == 0 {
            return SimDuration::ZERO;
        }
        let q = q.clamp(0.0, 100.0);
        let target = ((q / 100.0) * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c > target {
                return SimDuration::from_nanos(Self::bucket_upper_bound(idx).min(self.max_ns));
            }
            seen += c;
        }
        self.max()
    }

    /// Median sample.
    pub fn median(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
        if other.count > 0 {
            self.min_ns = self.min_ns.min(other.min_ns);
            self.max_ns = self.max_ns.max(other.max_ns);
        }
    }

    fn bucket_index(ns: u64) -> usize {
        if ns < SUB_BUCKETS as u64 {
            return ns as usize;
        }
        let magnitude = 63 - ns.leading_zeros() as usize;
        let base_mag = SUB_BUCKETS.trailing_zeros() as usize; // log2(SUB_BUCKETS)
        let mag = (magnitude - base_mag).min(MAGNITUDES - 1);
        let shifted = (ns >> (magnitude - base_mag + 1)) as usize & (SUB_BUCKETS / 2 - 1);
        let idx = if mag == 0 {
            ns as usize
        } else {
            mag * SUB_BUCKETS / 2 + SUB_BUCKETS / 2 + shifted
        };
        idx.min(MAGNITUDES * SUB_BUCKETS - 1)
    }

    fn bucket_upper_bound(idx: usize) -> u64 {
        // Invert bucket_index approximately: find the largest ns that maps here
        // by scanning powers; cheap because called only during reporting.
        if idx < SUB_BUCKETS {
            return idx as u64;
        }
        let base_mag = SUB_BUCKETS.trailing_zeros() as usize;
        let half = SUB_BUCKETS / 2;
        let mag = (idx - half) / half;
        let sub = (idx - half) % half;
        let magnitude = mag + base_mag;
        let low = 1u64 << magnitude;
        let step = 1u64 << (magnitude - base_mag + 1);
        low + (sub as u64 + 1) * step - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.median(), SimDuration::ZERO);
        assert_eq!(h.mean(), SimDuration::ZERO);
        assert_eq!(h.min(), SimDuration::ZERO);
    }

    #[test]
    fn single_sample_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(5));
        assert_eq!(h.count(), 1);
        assert_eq!(h.mean().as_nanos(), 5_000);
        assert_eq!(h.min().as_nanos(), 5_000);
        assert_eq!(h.max().as_nanos(), 5_000);
        // Percentile resolution is ~3%, so allow slack.
        let med = h.median().as_nanos();
        assert!((5_000..=5_400).contains(&med), "median {med}");
    }

    #[test]
    fn percentiles_are_ordered() {
        let mut h = LatencyHistogram::new();
        for i in 1..=10_000u64 {
            h.record(SimDuration::from_nanos(i * 10));
        }
        let p50 = h.percentile(50.0);
        let p90 = h.percentile(90.0);
        let p99 = h.percentile(99.0);
        assert!(p50 <= p90 && p90 <= p99);
        assert!(p99 <= h.max());
        assert!(h.min().as_nanos() == 10);
    }

    #[test]
    fn percentile_accuracy_within_resolution() {
        let mut h = LatencyHistogram::new();
        for i in 1..=100_000u64 {
            h.record(SimDuration::from_nanos(i));
        }
        let p50 = h.percentile(50.0).as_nanos() as f64;
        assert!((p50 - 50_000.0).abs() / 50_000.0 < 0.07, "p50 {p50}");
        let p99 = h.percentile(99.0).as_nanos() as f64;
        assert!((p99 - 99_000.0).abs() / 99_000.0 < 0.07, "p99 {p99}");
    }

    #[test]
    fn merge_combines_counts_and_extrema() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(SimDuration::from_nanos(100));
        b.record(SimDuration::from_nanos(1_000_000));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min().as_nanos(), 100);
        assert_eq!(a.max().as_nanos(), 1_000_000);
    }

    #[test]
    fn tiny_values_use_exact_buckets() {
        let mut h = LatencyHistogram::new();
        for ns in 0..32u64 {
            h.record(SimDuration::from_nanos(ns));
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min().as_nanos(), 0);
        assert_eq!(h.max().as_nanos(), 31);
    }

    #[test]
    fn huge_values_do_not_overflow_buckets() {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_secs(10_000));
        assert_eq!(h.count(), 1);
        assert!(h.max().as_secs_f64() >= 9_999.0);
    }
}
