//! Deterministic random number generation.
//!
//! Every stochastic component of the simulation (network jitter, batch-job
//! arrivals, payload generation) draws from a [`DeterministicRng`] seeded
//! explicitly, so experiments are bit-reproducible across runs and machines.
//! The generator is SplitMix64 — tiny, fast, and good enough for cost-model
//! jitter; it is *not* used where statistical quality matters (workload
//! payloads use `rand`'s StdRng seeded from this one).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// The SplitMix64 finalizer: a full-avalanche bijective mix of a 64-bit
/// word. Besides driving [`DeterministicRng`], it is the avalanche step of
/// deterministic placement hashing (`rfaas::sharding::stable_hash`), where
/// raw byte-hash output clusters too much to order a consistent-hash ring.
pub fn splitmix64_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A small, seedable, fully deterministic PRNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Create a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        DeterministicRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64_finalize(self.state)
    }

    /// Uniform value in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range_u64 requires lo < hi");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.next_f64() * (hi - lo)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Sample an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Sample a normal distribution (Box-Muller) with the given mean/stddev.
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1 = self.next_f64().max(f64::MIN_POSITIVE);
        let u2 = self.next_f64();
        let mag = (-2.0 * u1.ln()).sqrt();
        mean + stddev * mag * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Derive a child generator with an independent stream.
    pub fn fork(&mut self, stream: u64) -> DeterministicRng {
        DeterministicRng::new(self.next_u64() ^ stream.rotate_left(17))
    }

    /// Build a `rand`-compatible StdRng seeded from this generator, for code
    /// that needs a full-quality distribution API.
    pub fn std_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(42);
        let mut b = DeterministicRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = DeterministicRng::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = DeterministicRng::new(9);
        for _ in 0..10_000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let y = r.range_f64(-1.0, 1.0);
            assert!((-1.0..1.0).contains(&y));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = DeterministicRng::new(11);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = DeterministicRng::new(13);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean was {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "stddev was {}", var.sqrt());
    }

    #[test]
    fn chance_probability_roughly_holds() {
        let mut r = DeterministicRng::new(17);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate was {rate}");
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut parent = DeterministicRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let identical = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(identical, 0);
    }
}
