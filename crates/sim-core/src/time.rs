//! Virtual time primitives.
//!
//! All latencies in the reproduction are expressed as [`SimDuration`]s and all
//! points in time as [`SimTime`]s, both with nanosecond resolution. They are
//! thin wrappers over `u64`/`i64`-free arithmetic that saturates instead of
//! overflowing, because cost models occasionally multiply large byte counts by
//! per-byte costs.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch, as a float (used by harness output).
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Milliseconds since the epoch, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Seconds since the epoch, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds, rounding to the nearest nanosecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration((secs.max(0.0) * 1e9).round() as u64)
    }

    /// Construct from fractional microseconds.
    pub fn from_micros_f64(us: f64) -> Self {
        SimDuration((us.max(0.0) * 1e3).round() as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds, as a float.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Milliseconds, as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Seconds, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by an integer factor, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scale by a float factor (used by jitter models), rounding down.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration((self.0 as f64 * factor.max(0.0)) as u64)
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Whether this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs.max(1))
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

/// Render a nanosecond count with a human-friendly unit.
fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimTime::from_millis(5).as_nanos(), 5_000_000);
        assert_eq!(SimTime::from_secs(5).as_nanos(), 5_000_000_000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_nanos(), 14_000);
        assert_eq!((t - d).as_nanos(), 6_000);
        assert_eq!(((t + d) - t).as_nanos(), 4_000);
        assert_eq!((d * 3).as_nanos(), 12_000);
        assert_eq!((d / 2).as_nanos(), 2_000);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!(a.saturating_since(b).as_nanos(), 0);
        assert_eq!(b.saturating_since(a).as_nanos(), 5);
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_nanos(1_500);
        assert!((d.as_micros_f64() - 1.5).abs() < 1e-12);
        let d = SimDuration::from_secs_f64(0.25);
        assert_eq!(d.as_nanos(), 250_000_000);
        let d = SimDuration::from_micros_f64(3.5);
        assert_eq!(d.as_nanos(), 3_500);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_nanos(120)), "120ns");
        assert_eq!(format!("{}", SimDuration::from_nanos(1_200)), "1.200us");
        assert_eq!(format!("{}", SimDuration::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(2)), "2.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total.as_nanos(), 10_000);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimDuration::from_nanos(10);
        let b = SimDuration::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let ta = SimTime::from_nanos(10);
        let tb = SimTime::from_nanos(20);
        assert_eq!(ta.max(tb), tb);
        assert_eq!(ta.min(tb), ta);
    }
}
