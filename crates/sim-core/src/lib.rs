//! Core simulation utilities shared by every crate in the rFaaS reproduction.
//!
//! The reproduction measures performance in *virtual time*: data movement and
//! computation really happen, but their duration is charged from calibrated
//! cost models onto per-actor [`VirtualClock`]s. This module provides:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution virtual timestamps,
//! * [`VirtualClock`] — a monotonically advancing clock owned by one actor
//!   (client, executor worker, manager, MPI rank, ...),
//! * [`stats`] — medians, percentiles and the non-parametric confidence
//!   intervals the paper reports,
//! * [`rng`] — small deterministic PRNG helpers so experiments are repeatable,
//! * [`histogram`] — fixed-bucket latency histograms for harness output,
//! * [`sync`] — rank-ordered mutexes enforcing the workspace lock order
//!   (checked in debug builds and under the `lock-sanitizer` feature).

pub mod clock;
pub mod histogram;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;

pub use clock::VirtualClock;
pub use histogram::LatencyHistogram;
pub use rng::{splitmix64_finalize, DeterministicRng};
pub use stats::{median, percentile, ConfidenceInterval, Summary};
pub use sync::{LockRank, OrderedMutex, OrderedMutexGuard};
pub use time::{SimDuration, SimTime};
