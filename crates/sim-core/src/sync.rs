//! Rank-ordered locking: the runtime half of the workspace lock-order
//! story (the static half is `simlint`'s `lock_order` rule).
//!
//! [`OrderedMutex`] wraps the workspace `parking_lot` mutex with a
//! [`LockRank`]. Under `debug_assertions` or the `lock-sanitizer` feature,
//! every acquisition is checked against a thread-local stack of held
//! ranks: a thread may only acquire a lock whose rank is strictly greater
//! than every rank it already holds. Because all threads then acquire
//! along the same global order, no cycle — and therefore no deadlock —
//! between `OrderedMutex`es is possible. Release order is unconstrained
//! (hand-over-hand locking is fine).
//!
//! The `lock-sanitizer` feature additionally keeps a process-wide graph of
//! observed acquisition edges so a violation report can show the offending
//! cycle, not just the pair.
//!
//! The workspace rank table lives in [`ranks`]; DESIGN.md ("Determinism &
//! locking invariants") documents the same table with rationale. Release
//! builds without the feature compile the checks out entirely:
//! `OrderedMutex` is then a zero-cost newtype over the parking_lot shim.

use std::fmt;

/// A position in the global acquisition order. Lower ranks are acquired
/// first; a thread holding rank `r` may only take locks of rank `> r`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockRank {
    pub rank: u16,
    pub name: &'static str,
}

impl LockRank {
    pub const fn new(rank: u16, name: &'static str) -> LockRank {
        LockRank { rank, name }
    }
}

impl fmt::Display for LockRank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.name, self.rank)
    }
}

/// The workspace lock-rank table. One global namespace: a single thread can
/// legitimately cross layers (the manager places onto the warm pool, the
/// executor parks sandboxes, state bindings reach the state plane), so the
/// order must be total across subsystems, outermost first. simlint's
/// `locks` subcommand prints the observed acquisition graph this table is
/// a topological order of.
pub mod ranks {
    use super::LockRank;

    // Client (outermost: user-facing calls start here).
    pub const CLIENT_RECOVERY: LockRank = LockRank::new(10, "client.recovery_lock");
    pub const CLIENT_ACTIVE: LockRank = LockRank::new(12, "client.active");
    pub const CLIENT_LAST_REQUEST: LockRank = LockRank::new(14, "client.last_request");
    pub const CLIENT_SESSION_STATE: LockRank = LockRank::new(16, "client.session_state");
    pub const CLIENT_COLD_START: LockRank = LockRank::new(18, "client.cold_start");
    // Held across the manager poll during allocation, so it must rank below
    // the manager's own locks.
    pub const CLIENT_CONTROL: LockRank = LockRank::new(20, "client.control");
    pub const SESSION_BUFFER_POOL: LockRank = LockRank::new(22, "session.buffer_pool");
    // The manager's control socket is polled while the client's control lock
    // is held (the allocation round trip), and its handler places leases, so
    // it sits between the client block and the manager registry locks.
    pub const MANAGER_CONTROL: LockRank = LockRank::new(28, "manager.control");

    // Invocation reactor.
    pub const REACTOR_TURN: LockRank = LockRank::new(30, "reactor.turn_lock");
    pub const REACTOR_SWEEP: LockRank = LockRank::new(32, "reactor.sweep");
    pub const REACTOR_EVENTS: LockRank = LockRank::new(34, "reactor.events");
    pub const REACTOR_STATE: LockRank = LockRank::new(36, "reactor.state");
    pub const REACTOR_READY: LockRank = LockRank::new(38, "reactor.ready");
    // A worker connection's result stash is filled while the reactor pumps it
    // (turn/sweep/events held) and drained while a ready hint is resolved, so
    // it ranks above the whole reactor block.
    pub const CLIENT_COMPLETED: LockRank = LockRank::new(39, "client.completed");

    // Resource manager.
    pub const MANAGER_LEASES: LockRank = LockRank::new(40, "manager.leases");
    pub const MANAGER_EXECUTORS: LockRank = LockRank::new(42, "manager.executors");
    pub const MANAGER_TERMINATED: LockRank = LockRank::new(44, "manager.terminated_leases");
    pub const MANAGER_BILLING_QPS: LockRank = LockRank::new(46, "manager.billing_qps");

    // Executor server.
    pub const EXECUTOR_HEARTBEAT: LockRank = LockRank::new(48, "executor.heartbeat");
    pub const EXECUTOR_ALLOCATOR: LockRank = LockRank::new(52, "executor.allocator_state");
    pub const EXECUTOR_PROCESS: LockRank = LockRank::new(54, "executor.process");
    // Above the process lock: worker handles hang off a locked process, and
    // callers flip polling modes while holding the process guard.
    pub const EXECUTOR_MODE: LockRank = LockRank::new(55, "executor.mode");
    pub const EXECUTOR_STATE_BINDING: LockRank = LockRank::new(56, "executor.state_binding");
    pub const EXECUTOR_SANDBOX: LockRank = LockRank::new(58, "executor.sandbox");
    pub const EXECUTOR_BILLING: LockRank = LockRank::new(60, "executor.billing");
    pub const EXECUTOR_LAST_USED: LockRank = LockRank::new(62, "executor.last_used");
    pub const EXECUTOR_STATS: LockRank = LockRank::new(64, "executor.stats");
    pub const EXECUTOR_FORK_TRACKER: LockRank = LockRank::new(66, "executor.fork_tracker");
    pub const EXECUTOR_FORK_SERVED: LockRank = LockRank::new(68, "executor.fork_served");

    // Warm sandbox pool (entered from manager placement and executor
    // deallocation, both of which may hold their own locks).
    pub const WARM_POOL: LockRank = LockRank::new(70, "sandbox.warm_pool");

    // State plane (entered while an executor state binding is held). The
    // metadata server always drops its state guard before touching the
    // socket, but ranking the socket above keeps a state->socket nesting
    // legal if a handler ever needs it.
    pub const STATE_SERVER: LockRank = LockRank::new(80, "state_plane.server");
    pub const STATE_SOCKET: LockRank = LockRank::new(82, "state_plane.socket");

    // Leaf locks: billing accumulators are taken while an executor's billing
    // slot is held (rank 60), and never acquire anything themselves.
    pub const BILLING_PENDING: LockRank = LockRank::new(90, "billing.pending");
    pub const BILLING_FLUSHES: LockRank = LockRank::new(92, "billing.flushes");
    pub const BILLING_SLOTS: LockRank = LockRank::new(94, "billing.next_slot");
    pub const LIFECYCLE_STATS: LockRank = LockRank::new(96, "lifecycle.stats");
}

/// A violation detected by the pure checker (and the panic payload the
/// runtime wrapper formats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankViolation {
    pub held: LockRank,
    pub acquiring: LockRank,
}

impl fmt::Display for RankViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lock-order violation: acquiring {} while holding {} (ranks must be \
             strictly increasing; see sim_core::sync::ranks and DESIGN.md)",
            self.acquiring, self.held
        )
    }
}

/// Pure rank-order checker: the model the runtime wrapper drives, exposed
/// so tests (the OrderedMutex proptest suite) can exercise the discipline
/// on arbitrary sequences without touching real mutexes or threads.
#[derive(Debug, Default)]
pub struct RankChecker {
    held: Vec<(u64, LockRank)>,
    next_id: u64,
}

impl RankChecker {
    pub fn new() -> RankChecker {
        RankChecker::default()
    }

    /// Attempt to acquire `rank`. On success returns a token to pass to
    /// [`RankChecker::release`]; releases may come in any order.
    pub fn acquire(&mut self, rank: LockRank) -> Result<u64, RankViolation> {
        if let Some(&(_, held)) = self.held.iter().max_by_key(|(_, r)| r.rank) {
            if rank.rank <= held.rank {
                return Err(RankViolation {
                    held,
                    acquiring: rank,
                });
            }
        }
        let id = self.next_id;
        self.next_id += 1;
        self.held.push((id, rank));
        Ok(id)
    }

    /// Release a previously acquired token. Unknown tokens are ignored
    /// (double release is a caller bug but not a safety issue here).
    pub fn release(&mut self, token: u64) {
        self.held.retain(|(id, _)| *id != token);
    }

    /// Ranks currently held, in acquisition order.
    pub fn held(&self) -> Vec<LockRank> {
        self.held.iter().map(|(_, r)| *r).collect()
    }
}

#[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
mod checking {
    use super::LockRank;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(u64, LockRank)>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: RefCell<u64> = const { RefCell::new(0) };
    }

    /// Record an acquisition, panicking on a rank-order violation.
    pub(super) fn on_acquire(rank: LockRank) -> u64 {
        HELD.with(|h| {
            let held = h.borrow();
            if let Some(&(_, top)) = held.iter().max_by_key(|(_, r)| r.rank) {
                if rank.rank <= top.rank {
                    let chain: Vec<String> = held.iter().map(|(_, r)| r.to_string()).collect();
                    drop(held);
                    super::graph::note_edge(top, rank);
                    panic!(
                        "{}{}",
                        super::RankViolation {
                            held: top,
                            acquiring: rank
                        },
                        super::graph::cycle_report(rank)
                            .map(|c| format!("; observed acquisition cycle: {c}"))
                            .unwrap_or_else(|| format!("; held: [{}]", chain.join(", ")))
                    );
                }
            }
            drop(held);
            let id = NEXT_ID.with(|n| {
                let mut n = n.borrow_mut();
                *n += 1;
                *n
            });
            if let Some(&(_, top)) = h.borrow().iter().max_by_key(|(_, r)| r.rank) {
                super::graph::note_edge(top, rank);
            }
            h.borrow_mut().push((id, rank));
            id
        })
    }

    pub(super) fn on_release(token: u64) {
        HELD.with(|h| h.borrow_mut().retain(|(id, _)| *id != token));
    }
}

/// Process-wide acquisition-edge graph, kept only under the sanitizer
/// feature so violation reports can print the full cycle.
#[cfg(feature = "lock-sanitizer")]
mod graph {
    use super::LockRank;
    use std::collections::BTreeMap;
    use std::sync::Mutex as StdMutex;

    static EDGES: StdMutex<Option<BTreeMap<&'static str, Vec<LockRank>>>> = StdMutex::new(None);

    pub(super) fn note_edge(from: LockRank, to: LockRank) {
        let mut g = EDGES.lock().unwrap_or_else(|e| e.into_inner());
        let map = g.get_or_insert_with(BTreeMap::new);
        let succ = map.entry(from.name).or_default();
        if !succ.iter().any(|r| r.name == to.name) {
            succ.push(to);
        }
    }

    /// If the observed edges contain a path from `start` back to `start`,
    /// render it (`a -> b -> a`).
    pub(super) fn cycle_report(start: LockRank) -> Option<String> {
        let g = EDGES.lock().unwrap_or_else(|e| e.into_inner());
        let map = g.as_ref()?;
        // DFS from start looking for a path back to start.
        let mut stack = vec![(start, vec![start])];
        let mut visited: Vec<&'static str> = Vec::new();
        while let Some((node, path)) = stack.pop() {
            for next in map.get(node.name).into_iter().flatten() {
                if next.name == start.name {
                    let mut names: Vec<&str> = path.iter().map(|r| r.name).collect();
                    names.push(start.name);
                    return Some(names.join(" -> "));
                }
                if !visited.contains(&next.name) {
                    visited.push(next.name);
                    let mut p = path.clone();
                    p.push(*next);
                    stack.push((*next, p));
                }
            }
        }
        None
    }
}

#[cfg(all(
    any(debug_assertions, feature = "lock-sanitizer"),
    not(feature = "lock-sanitizer")
))]
mod graph {
    use super::LockRank;
    pub(super) fn note_edge(_from: LockRank, _to: LockRank) {}
    pub(super) fn cycle_report(_start: LockRank) -> Option<String> {
        None
    }
}

/// A mutex with a position in the global lock order.
///
/// API-compatible with the workspace `parking_lot::Mutex` for the
/// operations the tree uses (`lock`, `try_lock`, `get_mut`, `into_inner`),
/// plus the rank argument at construction.
pub struct OrderedMutex<T> {
    inner: parking_lot::Mutex<T>,
    rank: LockRank,
}

impl<T> OrderedMutex<T> {
    pub const fn new(rank: LockRank, value: T) -> OrderedMutex<T> {
        OrderedMutex {
            inner: parking_lot::Mutex::new(value),
            rank,
        }
    }

    /// This lock's rank.
    pub fn rank(&self) -> LockRank {
        self.rank
    }

    /// Acquire, enforcing rank order in checked builds.
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
        let token = checking::on_acquire(self.rank);
        OrderedMutexGuard {
            inner: self.inner.lock(),
            #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
            token,
        }
    }

    /// Non-blocking acquire. A `try_lock` cannot deadlock, but a successful
    /// one still participates in rank tracking (locks acquired under it are
    /// checked against it).
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let inner = self.inner.try_lock()?;
        #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
        let token = checking::on_acquire(self.rank);
        Some(OrderedMutexGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
            token,
        })
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("rank", &self.rank)
            .finish_non_exhaustive()
    }
}

impl<T: Default> OrderedMutex<T> {
    /// Convenience for `OrderedMutex::new(rank, T::default())`.
    pub fn default_with(rank: LockRank) -> OrderedMutex<T> {
        OrderedMutex::new(rank, T::default())
    }
}

/// Guard returned by [`OrderedMutex::lock`]. Dropping releases the lock and
/// pops the rank from the thread's held set (in any order — hand-over-hand
/// release is allowed).
pub struct OrderedMutexGuard<'a, T> {
    inner: parking_lot::MutexGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
    token: u64,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        #[cfg(any(debug_assertions, feature = "lock-sanitizer"))]
        checking::on_release(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LOW: LockRank = LockRank::new(10, "test.low");
    const MID: LockRank = LockRank::new(20, "test.mid");
    const HIGH: LockRank = LockRank::new(30, "test.high");

    #[test]
    fn increasing_order_is_accepted() {
        let a = OrderedMutex::new(LOW, 1);
        let b = OrderedMutex::new(MID, 2);
        let c = OrderedMutex::new(HIGH, 3);
        let ga = a.lock();
        let gb = b.lock();
        let gc = c.lock();
        assert_eq!(*ga + *gb + *gc, 6);
    }

    #[test]
    fn hand_over_hand_release_is_accepted() {
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(MID, ());
        let c = OrderedMutex::new(HIGH, ());
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // release out of LIFO order
        let gc = c.lock();
        drop(gb);
        drop(gc);
        // After full release, LOW is acquirable again.
        let _ga = a.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn decreasing_order_panics() {
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(MID, ());
        let _gb = b.lock();
        let _ga = a.lock();
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "lock-order violation")]
    fn equal_rank_panics() {
        let a = OrderedMutex::new(LOW, ());
        let b = OrderedMutex::new(LOW, ());
        let _ga = a.lock();
        let _gb = b.lock();
    }

    #[test]
    fn sequential_reacquisition_is_fine() {
        let a = OrderedMutex::new(MID, 0u32);
        for _ in 0..3 {
            *a.lock() += 1;
        }
        assert_eq!(*a.lock(), 3);
    }

    #[test]
    fn checker_matches_discipline() {
        let mut ck = RankChecker::new();
        let t1 = ck.acquire(LOW).unwrap();
        let t2 = ck.acquire(HIGH).unwrap();
        assert!(ck.acquire(MID).is_err()); // below max held
        ck.release(t2);
        // Still holding LOW; MID is now fine.
        let t3 = ck.acquire(MID).unwrap();
        ck.release(t1);
        ck.release(t3);
        assert!(ck.held().is_empty());
    }

    #[test]
    fn checker_violation_names_both_locks() {
        let mut ck = RankChecker::new();
        ck.acquire(MID).unwrap();
        let err = ck.acquire(LOW).unwrap_err();
        assert_eq!(err.held, MID);
        assert_eq!(err.acquiring, LOW);
        assert!(err.to_string().contains("test.low"));
    }

    // Property suite: the rank discipline over arbitrary interleaved
    // acquire/release sequences. Violations are always caught, conforming
    // sequences are never flagged, and the pure checker agrees with the
    // real OrderedMutex on every conforming schedule.
    proptest::proptest! {
        // A schedule that only ever acquires above its current maximum held
        // rank is conforming by construction and must never be rejected.
        #[test]
        fn prop_conforming_sequences_never_flagged(ops: Vec<u16>) {
            let mut ck = RankChecker::new();
            let mut tokens: Vec<(u64, u16)> = Vec::new();
            for op in ops {
                let release = op % 3 == 0 && !tokens.is_empty();
                if release {
                    let (tok, _) = tokens.remove((op as usize / 3) % tokens.len());
                    ck.release(tok);
                } else {
                    let max_held = tokens.iter().map(|&(_, r)| r).max().unwrap_or(0);
                    if max_held == u16::MAX {
                        continue;
                    }
                    // Next rank strictly above everything held.
                    let rank = max_held.saturating_add(1 + op % 7).max(max_held + 1);
                    let lr = LockRank::new(rank, "prop.lock");
                    let tok = ck.acquire(lr).unwrap_or_else(|v| {
                        panic!("conforming acquisition rejected: {v}")
                    });
                    tokens.push((tok, rank));
                }
            }
        }

        // Acquiring at or below the maximum held rank must always be
        // rejected, regardless of the (conforming) history before it.
        #[test]
        fn prop_violations_always_caught(history: Vec<u16>, offense: u16) {
            let mut ck = RankChecker::new();
            let mut max_held: Option<u16> = None;
            for r in history {
                let next = match max_held {
                    Some(m) if m == u16::MAX => break,
                    Some(m) => m.saturating_add(1).max(m + 1) + r % 5,
                    None => r % 1000,
                };
                ck.acquire(LockRank::new(next, "prop.hist")).unwrap();
                max_held = Some(max_held.map_or(next, |m| m.max(next)));
            }
            if let Some(m) = max_held {
                let bad = if m == u16::MAX { offense } else { offense % (m + 1) }; // 0..=m
                let err = ck.acquire(LockRank::new(bad, "prop.bad"));
                proptest::prop_assert!(err.is_err());
            }
        }

        // The pure checker and the real OrderedMutex agree: any schedule
        // the checker accepts runs panic-free against real mutexes, with
        // guards dropped in the same (arbitrary) order.
        #[test]
        fn prop_checker_matches_ordered_mutex(ops: Vec<u16>) {
            let ranks: Vec<LockRank> = (0..8)
                .map(|i| LockRank::new(100 + i * 10, "prop.pair"))
                .collect();
            let mutexes: Vec<OrderedMutex<u32>> =
                ranks.iter().map(|&r| OrderedMutex::new(r, 0)).collect();
            let mut ck = RankChecker::new();
            let mut held: Vec<(u64, OrderedMutexGuard<'_, u32>)> = Vec::new();
            for op in ops {
                if op % 3 == 0 && !held.is_empty() {
                    let idx = (op as usize / 3) % held.len();
                    let (tok, guard) = held.remove(idx);
                    ck.release(tok);
                    drop(guard);
                } else {
                    let idx = (op as usize) % ranks.len();
                    match ck.acquire(ranks[idx]) {
                        Ok(tok) => {
                            // Checker accepted: the real mutex must too
                            // (a panic here fails the test).
                            let guard = mutexes[idx].lock();
                            held.push((tok, guard));
                        }
                        Err(_) => {
                            // Checker rejected: skip (driving the real
                            // mutex would rightly panic in debug builds).
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rank_table_is_strictly_monotonic_in_declaration_order() {
        // The published table must be usable as-is: every constant unique.
        let all = [
            ranks::CLIENT_RECOVERY,
            ranks::CLIENT_ACTIVE,
            ranks::CLIENT_LAST_REQUEST,
            ranks::CLIENT_SESSION_STATE,
            ranks::CLIENT_COLD_START,
            ranks::CLIENT_CONTROL,
            ranks::SESSION_BUFFER_POOL,
            ranks::MANAGER_CONTROL,
            ranks::REACTOR_TURN,
            ranks::REACTOR_SWEEP,
            ranks::REACTOR_EVENTS,
            ranks::REACTOR_STATE,
            ranks::REACTOR_READY,
            ranks::CLIENT_COMPLETED,
            ranks::MANAGER_LEASES,
            ranks::MANAGER_EXECUTORS,
            ranks::MANAGER_TERMINATED,
            ranks::MANAGER_BILLING_QPS,
            ranks::EXECUTOR_HEARTBEAT,
            ranks::EXECUTOR_ALLOCATOR,
            ranks::EXECUTOR_PROCESS,
            ranks::EXECUTOR_MODE,
            ranks::EXECUTOR_STATE_BINDING,
            ranks::EXECUTOR_SANDBOX,
            ranks::EXECUTOR_BILLING,
            ranks::EXECUTOR_LAST_USED,
            ranks::EXECUTOR_STATS,
            ranks::EXECUTOR_FORK_TRACKER,
            ranks::EXECUTOR_FORK_SERVED,
            ranks::WARM_POOL,
            ranks::STATE_SERVER,
            ranks::STATE_SOCKET,
            ranks::BILLING_PENDING,
            ranks::BILLING_FLUSHES,
            ranks::BILLING_SLOTS,
            ranks::LIFECYCLE_STATS,
        ];
        for w in all.windows(2) {
            assert!(w[0].rank < w[1].rank, "{} must rank below {}", w[0], w[1]);
        }
    }
}
