//! Per-actor virtual clocks.
//!
//! Every independent actor in the simulation (a client thread, an executor
//! worker, a resource manager, an MPI rank) owns a [`VirtualClock`]. Local
//! work advances the clock by a cost-model duration; messages carry the
//! sender's timestamp and the receiver synchronises to
//! `max(local, arrival_time)` — the usual conservative logical-time rule. The
//! clock is internally atomic so that completion handlers running on other OS
//! threads (e.g. the RDMA fabric delivering a completion) can push an actor's
//! clock forward.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::time::{SimDuration, SimTime};

/// A monotonically advancing virtual clock shared by one logical actor.
#[derive(Debug, Default)]
pub struct VirtualClock {
    now_ns: AtomicU64,
}

impl VirtualClock {
    /// A clock starting at the simulation epoch.
    pub fn new() -> Self {
        Self::starting_at(SimTime::ZERO)
    }

    /// A clock starting at an arbitrary instant.
    pub fn starting_at(start: SimTime) -> Self {
        VirtualClock {
            now_ns: AtomicU64::new(start.as_nanos()),
        }
    }

    /// Convenience constructor returning a shareable handle.
    pub fn shared() -> Arc<Self> {
        Arc::new(Self::new())
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.now_ns.load(Ordering::Acquire))
    }

    /// Advance the clock by `d` (local work) and return the new time.
    pub fn advance(&self, d: SimDuration) -> SimTime {
        let after = self
            .now_ns
            .fetch_add(d.as_nanos(), Ordering::AcqRel)
            .saturating_add(d.as_nanos());
        SimTime::from_nanos(after)
    }

    /// Synchronise to an external event time: the clock never moves backwards,
    /// so the result is `max(now, t)`. Returns the new time.
    pub fn advance_to(&self, t: SimTime) -> SimTime {
        let target = t.as_nanos();
        let mut current = self.now_ns.load(Ordering::Acquire);
        while current < target {
            match self.now_ns.compare_exchange_weak(
                current,
                target,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return SimTime::from_nanos(target),
                Err(observed) => current = observed,
            }
        }
        SimTime::from_nanos(current)
    }

    /// Synchronise to an event time and then charge additional local work.
    pub fn advance_to_then(&self, t: SimTime, extra: SimDuration) -> SimTime {
        self.advance_to(t);
        self.advance(extra)
    }

    /// Reset to the epoch. Only used by tests and benchmark warm-up.
    pub fn reset(&self) {
        self.now_ns.store(0, Ordering::Release);
    }
}

impl Clone for VirtualClock {
    fn clone(&self) -> Self {
        VirtualClock {
            now_ns: AtomicU64::new(self.now_ns.load(Ordering::Acquire)),
        }
    }
}

/// A scoped measurement on a virtual clock: records the start time and reports
/// the elapsed virtual duration when asked.
#[derive(Debug)]
pub struct ClockSpan<'a> {
    clock: &'a VirtualClock,
    start: SimTime,
}

impl<'a> ClockSpan<'a> {
    /// Begin measuring on `clock`.
    pub fn begin(clock: &'a VirtualClock) -> Self {
        ClockSpan {
            start: clock.now(),
            clock,
        }
    }

    /// Virtual time elapsed since [`ClockSpan::begin`].
    pub fn elapsed(&self) -> SimDuration {
        self.clock.now().saturating_since(self.start)
    }

    /// The instant the span started.
    pub fn start(&self) -> SimTime {
        self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn advance_accumulates() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_micros(3));
        c.advance(SimDuration::from_micros(2));
        assert_eq!(c.now().as_nanos(), 5_000);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_micros(10));
        c.advance_to(SimTime::from_micros(4));
        assert_eq!(c.now().as_nanos(), 10_000);
        c.advance_to(SimTime::from_micros(25));
        assert_eq!(c.now().as_nanos(), 25_000);
    }

    #[test]
    fn advance_to_then_charges_extra() {
        let c = VirtualClock::new();
        let t = c.advance_to_then(SimTime::from_micros(5), SimDuration::from_nanos(300));
        assert_eq!(t.as_nanos(), 5_300);
    }

    #[test]
    fn starting_at_offsets_epoch() {
        let c = VirtualClock::starting_at(SimTime::from_millis(1));
        assert_eq!(c.now().as_nanos(), 1_000_000);
    }

    #[test]
    fn span_measures_elapsed_virtual_time() {
        let c = VirtualClock::new();
        let span = ClockSpan::begin(&c);
        c.advance(SimDuration::from_micros(7));
        assert_eq!(span.elapsed().as_nanos(), 7_000);
        assert_eq!(span.start(), SimTime::ZERO);
    }

    #[test]
    fn concurrent_advance_to_is_monotonic() {
        let c = Arc::new(VirtualClock::new());
        let mut handles = Vec::new();
        for i in 0..8u64 {
            let c = Arc::clone(&c);
            handles.push(thread::spawn(move || {
                for j in 0..1_000u64 {
                    c.advance_to(SimTime::from_nanos(i * 1_000 + j));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // The clock must have reached at least the largest requested target.
        assert!(c.now().as_nanos() >= 7_999);
    }

    #[test]
    fn clone_snapshots_current_time() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_micros(9));
        let d = c.clone();
        assert_eq!(d.now(), c.now());
        d.advance(SimDuration::from_micros(1));
        assert_ne!(d.now(), c.now());
    }

    #[test]
    fn reset_returns_to_epoch() {
        let c = VirtualClock::new();
        c.advance(SimDuration::from_secs(1));
        c.reset();
        assert_eq!(c.now(), SimTime::ZERO);
    }
}
