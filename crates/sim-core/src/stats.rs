//! Statistics used by the evaluation harnesses.
//!
//! The paper reports medians, 99th-percentile latencies and non-parametric
//! confidence intervals of the median (Sec. V-A, Fig. 12/13). This module
//! implements those estimators over `f64` samples and over [`SimDuration`]
//! samples.

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A two-sided confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// Lower bound of the interval.
    pub lower: f64,
    /// Upper bound of the interval.
    pub upper: f64,
    /// Confidence level in (0, 1), e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// Width of the interval.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether `value` lies inside the interval (inclusive).
    pub fn contains(&self, value: f64) -> bool {
        value >= self.lower && value <= self.upper
    }
}

/// Summary statistics for one experiment series.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Sample standard deviation (0 when fewer than two samples).
    pub stddev: f64,
    /// Non-parametric 95% CI of the median.
    pub median_ci95: ConfidenceInterval,
}

impl Summary {
    /// Compute a summary of `samples`. Panics if `samples` is empty.
    pub fn of(samples: &[f64]) -> Summary {
        assert!(
            !samples.is_empty(),
            "Summary::of requires at least one sample"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = if count > 1 {
            sorted.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            median: percentile_sorted(&sorted, 50.0),
            p99: percentile_sorted(&sorted, 99.0),
            min: sorted[0],
            max: sorted[count - 1],
            stddev: variance.sqrt(),
            median_ci95: median_ci_sorted(&sorted, 0.95),
        }
    }

    /// Summarise a slice of virtual durations, in microseconds.
    pub fn of_durations_us(samples: &[SimDuration]) -> Summary {
        let us: Vec<f64> = samples.iter().map(|d| d.as_micros_f64()).collect();
        Summary::of(&us)
    }

    /// Summarise a slice of virtual durations, in milliseconds.
    pub fn of_durations_ms(samples: &[SimDuration]) -> Summary {
        let ms: Vec<f64> = samples.iter().map(|d| d.as_millis_f64()).collect();
        Summary::of(&ms)
    }
}

/// Median of a sample set. Panics on empty input.
pub fn median(samples: &[f64]) -> f64 {
    percentile(samples, 50.0)
}

/// Linear-interpolation percentile (`q` in [0, 100]). Panics on empty input.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    assert!(
        !samples.is_empty(),
        "percentile requires at least one sample"
    );
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    percentile_sorted(&sorted, q)
}

fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    let n = sorted.len();
    if n == 1 {
        return sorted[0];
    }
    let q = q.clamp(0.0, 100.0);
    let rank = q / 100.0 * (n - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = rank - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Non-parametric confidence interval of the median using the binomial
/// order-statistic method (the estimator the paper cites for its tight <1%
/// interval bounds). For small n the interval degenerates to the full range.
pub fn median_confidence_interval(samples: &[f64], level: f64) -> ConfidenceInterval {
    assert!(!samples.is_empty());
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
    median_ci_sorted(&sorted, level)
}

fn median_ci_sorted(sorted: &[f64], level: f64) -> ConfidenceInterval {
    let n = sorted.len();
    if n < 5 {
        return ConfidenceInterval {
            lower: sorted[0],
            upper: sorted[n - 1],
            level,
        };
    }
    // Normal approximation to the binomial(n, 1/2) order statistic ranks.
    let z = z_for_two_sided(level);
    let half_width = z * (n as f64 / 4.0).sqrt();
    let lower_rank = ((n as f64 / 2.0 - half_width).floor().max(0.0)) as usize;
    let upper_rank = ((n as f64 / 2.0 + half_width).ceil() as usize).min(n - 1);
    ConfidenceInterval {
        lower: sorted[lower_rank],
        upper: sorted[upper_rank],
        level,
    }
}

/// Two-sided z value for common confidence levels; falls back to 1.96.
fn z_for_two_sided(level: f64) -> f64 {
    if (level - 0.99).abs() < 1e-9 {
        2.576
    } else if (level - 0.95).abs() < 1e-9 {
        1.96
    } else if (level - 0.90).abs() < 1e-9 {
        1.645
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn percentile_interpolates() {
        let xs: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        assert!((percentile(&xs, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&xs, 100.0) - 100.0).abs() < 1e-9);
        assert!((percentile(&xs, 50.0) - 50.5).abs() < 1e-9);
        assert!((percentile(&xs, 99.0) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_sample() {
        assert_eq!(percentile(&[42.0], 99.0), 42.0);
        assert_eq!(median(&[42.0]), 42.0);
    }

    #[test]
    fn summary_basic_fields() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-9);
        assert!((s.median - 3.0).abs() < 1e-9);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!(s.stddev > 1.58 && s.stddev < 1.59);
    }

    #[test]
    fn summary_of_durations() {
        let ds = vec![
            SimDuration::from_micros(1),
            SimDuration::from_micros(2),
            SimDuration::from_micros(3),
        ];
        let s = Summary::of_durations_us(&ds);
        assert!((s.median - 2.0).abs() < 1e-9);
        let s = Summary::of_durations_ms(&ds);
        assert!((s.median - 0.002).abs() < 1e-9);
    }

    #[test]
    fn ci_contains_median_for_tight_distribution() {
        let xs: Vec<f64> = (0..1_000).map(|i| 100.0 + (i % 10) as f64 * 0.01).collect();
        let ci = median_confidence_interval(&xs, 0.95);
        let m = median(&xs);
        assert!(ci.contains(m));
        // The paper reports interval bounds within 1% of the median.
        assert!(ci.width() / m < 0.01);
    }

    #[test]
    fn ci_small_sample_degenerates_to_range() {
        let ci = median_confidence_interval(&[1.0, 2.0, 3.0], 0.95);
        assert_eq!(ci.lower, 1.0);
        assert_eq!(ci.upper, 3.0);
    }

    #[test]
    fn ci_level_is_recorded() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        for level in [0.90, 0.95, 0.99] {
            let ci = median_confidence_interval(&xs, level);
            assert_eq!(ci.level, level);
            assert!(ci.lower <= ci.upper);
        }
    }

    #[test]
    #[should_panic]
    fn empty_samples_panic() {
        let _ = Summary::of(&[]);
    }
}
