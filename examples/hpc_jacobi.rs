//! MPI + rFaaS acceleration of a Jacobi solver (the Sec. V-G(b) scenario):
//! every simulated MPI rank offloads half of each iteration to a leased
//! function and caches the system matrix in the warm executor.
//!
//! ```text
//! cargo run --release --example hpc_jacobi
//! ```

use cluster_sim::NodeResources;
use mpi_sim::MpiWorld;
use rdma_fabric::Fabric;
use rfaas::{RFaasConfig, ResourceManager, Session, SpotExecutor};
use sandbox::{CodePackage, FunctionRegistry};
use workloads::jacobi::{encode_install, encode_iterate, jacobi_sweep_rows, sweep_cost};
use workloads::{jacobi_function, JacobiSystem};

const RANKS: usize = 4;
const UNKNOWNS: usize = 600;
const ITERATIONS: usize = 50;

fn main() {
    // Shared platform: one manager, two spot executors, the Jacobi function.
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("solver").with_function(jacobi_function()));
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = UNKNOWNS * UNKNOWNS * 8 + 64 * 1024;
    let manager = ResourceManager::new(&fabric, config.clone());
    for i in 0..2 {
        let executor = SpotExecutor::new(
            &fabric,
            &format!("spot-node-{i}"),
            NodeResources::xeon_gold_6154_dual(),
            registry.clone(),
            config.clone(),
        );
        manager.register_executor(&executor);
    }

    let world = MpiWorld::new();
    let fabric_ref = &fabric;
    let manager_ref = &manager;
    let config_ref = &config;
    let results = world.run(RANKS, move |rank| {
        // Each rank solves its own system; half of every sweep is offloaded.
        let session = Session::builder(
            fabric_ref,
            &format!("rank-{}", rank.rank()),
            manager_ref,
            "solver",
        )
        .config(config_ref.clone())
        .connect()
        .expect("allocation succeeds");
        // Jacobi messages are pre-encoded wire bytes; the solver returns the
        // remote half of the iterate as f64s.
        let jacobi = session
            .function::<[u8], [f64]>("jacobi")
            .expect("jacobi is deployed")
            .with_output_capacity(UNKNOWNS * 8);
        // All ranks solve the same deployed system (the cached matrix lives in
        // the code package shared by every executor process).
        let system = JacobiSystem::generate(UNKNOWNS, 7);
        let mut x = vec![0.0f64; UNKNOWNS];
        rank.barrier();
        let start = session.clock().now();
        for iteration in 0..ITERATIONS {
            // First invocation ships the matrix; later ones only the vector.
            let message = if iteration == 0 {
                encode_install(&system, &x, UNKNOWNS / 2, UNKNOWNS)
            } else {
                encode_iterate(&x, UNKNOWNS / 2, UNKNOWNS)
            };
            let future = jacobi.submit(&message[..]).expect("submission succeeds");
            let local_half = jacobi_sweep_rows(&system, &x, 0, UNKNOWNS / 2);
            session.clock().advance(sweep_cost(UNKNOWNS / 2, UNKNOWNS));
            let remote_half = future.wait().expect("offloaded half succeeds");
            x[..UNKNOWNS / 2].copy_from_slice(&local_half);
            x[UNKNOWNS / 2..].copy_from_slice(&remote_half);
        }
        let elapsed = session.clock().now().saturating_since(start);
        let residual = system.residual(&x);
        rank.barrier();
        session.close().expect("deallocation succeeds");
        (elapsed, residual)
    });

    println!("Jacobi solver: {UNKNOWNS} unknowns, {ITERATIONS} iterations, {RANKS} MPI ranks, half of every sweep offloaded to rFaaS");
    for result in &results {
        let (elapsed, residual) = &result.value;
        println!(
            "rank {}: solve time (virtual) {elapsed}, final residual {residual:.3e}",
            result.rank
        );
        assert!(residual.is_finite());
    }
    let mpi_only = sweep_cost(UNKNOWNS, UNKNOWNS) * ITERATIONS as u64;
    let accelerated = results
        .iter()
        .map(|r| r.value.0)
        .max()
        .expect("at least one rank");
    println!(
        "MPI-only sweep cost per rank: {mpi_only}; MPI + rFaaS: {accelerated}  (speedup {:.2}x)",
        mpi_only.as_secs_f64() / accelerated.as_secs_f64()
    );
}
