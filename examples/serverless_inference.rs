//! Serverless machine-learning inference (the Sec. V-E(b) scenario): an
//! image-recognition function runs in a Docker-isolated executor reached
//! through an SR-IOV virtual function, and the model stays cached in the warm
//! executor across invocations.
//!
//! ```text
//! cargo run --release --example serverless_inference
//! ```

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{RFaasConfig, ResourceManager, Session, SpotExecutor};
use sandbox::{CodePackage, FunctionRegistry, SandboxType};
use workloads::{image_recognition_function, Image, InputSizes};

fn main() {
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(
        CodePackage::new("ml-inference", "pytorch-resnet50:1.9", 180 * 1024)
            .with_function(image_recognition_function()),
    );
    let config = RFaasConfig::paper_calibration();
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "gpuless-node-0",
        NodeResources::xeon_gold_6154_dual(),
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    // Docker sandbox: stronger isolation, the RDMA NIC is reached through an
    // SR-IOV virtual function (adds ~50 ns per hot invocation).
    let session = Session::builder(&fabric, "inference-client", &manager, "ml-inference")
        .config(config)
        .sandbox(SandboxType::Docker)
        .connect()
        .expect("allocation succeeds");
    println!(
        "Docker cold start: {} (paper: ~2.7 s with the SR-IOV plugin)",
        session.cold_start().expect("recorded").total()
    );

    // Typed handle: an image goes in, 1000 class logits come out.
    let classify = session
        .function::<Image, [f64]>("image-recognition")
        .expect("function deployed")
        .with_output_capacity(1000 * 8);
    for (label, size) in [
        ("small (53 kB)", InputSizes::INFERENCE_SMALL),
        ("large (230 kB)", InputSizes::INFERENCE_LARGE),
    ] {
        let image = Image::synthetic(size, 42);
        // First call loads the model into executor memory; later calls reuse it.
        for round in 0..3 {
            let (logits, rtt) = classify.invoke_timed(&image).expect("inference succeeds");
            let (best_class, best_logit) = logits
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                .expect("1000 classes");
            println!(
                "{label} input, invocation {round}: class {best_class} (logit {best_logit:.3}), latency {rtt}"
            );
        }
    }

    session.close().expect("deallocation succeeds");
}
