//! Quickstart: deploy a function, lease one executor worker and invoke it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This is the Rust equivalent of the paper's Listing 2, expressed through
//! the typed session API: a `Session` owns the lease and the direct RDMA
//! connections, a `FunctionHandle` infers payload sizes from its codec, and
//! every invocation is a single one-sided write into the executor's memory.

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{RFaasConfig, ResourceManager, Session, SpotExecutor};
use sandbox::{echo_function, CodePackage, FunctionRegistry};

fn main() {
    // 1. The data-centre side: a fabric, a resource manager, and one spot
    //    executor offering idle resources, with our code package deployed.
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("quickstart").with_function(echo_function()));
    let config = RFaasConfig::paper_calibration();
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "spot-node-0",
        NodeResources {
            cores: 8,
            memory_mib: 32 * 1024,
        },
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    // 2. The client side: build a session — one leased worker, hot polling
    //    (the cold start happens inside connect()).
    let session = Session::builder(&fabric, "client-node", &manager, "quickstart")
        .config(config)
        .connect()
        .expect("allocation succeeds");
    let cold = session.cold_start().expect("cold start recorded");
    println!(
        "cold start: {} (spawn {}, code {})",
        cold.total(),
        cold.spawn_workers,
        cold.submit_code
    );

    // 3. Grab a typed handle and invoke: buffers, payload lengths and result
    //    decoding all come from the codec.
    let echo = session
        .function::<[u8], [u8]>("echo")
        .expect("echo is deployed");
    let message = b"hello, high-performance serverless!";
    for i in 0..5 {
        let (reply, rtt) = echo.invoke_timed(message).expect("invocation succeeds");
        assert_eq!(&reply, message);
        println!(
            "invocation {i}: {} bytes echoed in {rtt} (hot invocation over RDMA)",
            reply.len()
        );
    }

    // 4. Close the session; the executor's resources return to the pool.
    session.close().expect("deallocation succeeds");
    println!(
        "lease released; total platform cost: {:.6} USD",
        manager.total_cost()
    );
}
