//! Quickstart: deploy a function, lease one executor worker and invoke it.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! This is the Rust equivalent of the paper's Listing 2: an `Invoker` acquires
//! a lease, RDMA-registered buffers carry the payload, and the invocation is
//! a single one-sided write into the executor's memory.

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{Invoker, LeaseRequest, PollingMode, RFaasConfig, ResourceManager, SpotExecutor};
use sandbox::{echo_function, CodePackage, FunctionRegistry};

fn main() {
    // 1. The data-centre side: a fabric, a resource manager, and one spot
    //    executor offering idle resources, with our code package deployed.
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("quickstart").with_function(echo_function()));
    let config = RFaasConfig::paper_calibration();
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "spot-node-0",
        NodeResources {
            cores: 8,
            memory_mib: 32 * 1024,
        },
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    // 2. The client side: lease one worker (cold start) ...
    let mut invoker = Invoker::new(&fabric, "client-node", &manager, config);
    invoker
        .allocate(LeaseRequest::single_worker("quickstart"), PollingMode::Hot)
        .expect("allocation succeeds");
    let cold = invoker.cold_start().expect("cold start recorded");
    println!(
        "cold start: {} (spawn {}, code {})",
        cold.total(),
        cold.spawn_workers,
        cold.submit_code
    );

    // 3. ... allocate RDMA buffers and invoke the function.
    let alloc = invoker.allocator();
    let input = alloc.input(4096);
    let output = alloc.output(4096);
    let message = b"hello, high-performance serverless!";
    input.write_payload(message).expect("payload fits");

    for i in 0..5 {
        let (len, rtt) = invoker
            .invoke_sync("echo", &input, message.len(), &output)
            .expect("invocation succeeds");
        let echoed = output.read_payload(len).expect("result readable");
        assert_eq!(&echoed, message);
        println!("invocation {i}: {len} bytes echoed in {rtt} (hot invocation over RDMA)");
    }

    // 4. Release the lease; the executor's resources return to the pool.
    invoker.deallocate().expect("deallocation succeeds");
    println!(
        "lease released; total platform cost: {:.6} USD",
        manager.total_cost()
    );
}
