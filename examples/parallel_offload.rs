//! Parallel offloading of a Black-Scholes batch to multiple rFaaS workers
//! (the Sec. V-F scenario): the client splits a large option batch across
//! several leased workers, invokes them concurrently and combines the prices.
//!
//! ```text
//! cargo run --release --example parallel_offload
//! ```

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{Invoker, LeaseRequest, PollingMode, RFaasConfig, ResourceManager, SpotExecutor};
use sandbox::{CodePackage, FunctionRegistry};
use workloads::blackscholes::{options_to_bytes, price_batch};
use workloads::{blackscholes_function, generate_options};

const OPTIONS: usize = 100_000;
const WORKERS: usize = 8;

fn main() {
    // Platform setup with the Black-Scholes function deployed.
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("pricing").with_function(blackscholes_function()));
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = 16 * 1024 * 1024;
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "spot-node-0",
        NodeResources::xeon_gold_6154_dual(),
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    // Lease WORKERS hot workers.
    let mut invoker = Invoker::new(&fabric, "pricing-client", &manager, config);
    invoker
        .allocate(
            LeaseRequest::single_worker("pricing").with_cores(WORKERS as u32),
            PollingMode::Hot,
        )
        .expect("allocation succeeds");

    // Generate the batch and split it across the workers.
    let options = generate_options(OPTIONS, 7);
    let alloc = invoker.allocator();
    let per_worker = OPTIONS.div_ceil(WORKERS);
    let start = invoker.clock().now();
    let mut futures = Vec::new();
    let mut buffers = Vec::new();
    for (worker, chunk) in options.chunks(per_worker).enumerate() {
        let payload = options_to_bytes(chunk);
        let input = alloc.input(payload.len());
        let output = alloc.output(chunk.len() * 8);
        input.write_payload(&payload).expect("payload fits");
        buffers.push((input, output, chunk.len()));
        let (input, output, _) = buffers.last().unwrap();
        futures.push(
            invoker
                .submit_to_worker(worker, "blackscholes", input, payload.len(), output)
                .expect("submission succeeds"),
        );
    }

    // Collect remote prices and verify them against a local computation.
    let mut remote_prices = Vec::with_capacity(OPTIONS);
    for (future, (_, output, count)) in futures.into_iter().zip(buffers.iter()) {
        let len = future.wait().expect("offloaded pricing succeeds");
        assert_eq!(len, count * 8);
        remote_prices.extend(output.read_f64(len).expect("prices readable"));
    }
    let elapsed = invoker.clock().now().saturating_since(start);

    let local_prices = price_batch(&options);
    let max_error = remote_prices
        .iter()
        .zip(local_prices.iter())
        .map(|(r, l)| (r - l).abs())
        .fold(0.0f64, f64::max);

    println!("priced {OPTIONS} options on {WORKERS} remote workers");
    println!("batch completion time (virtual): {elapsed}");
    println!("max |remote - local| price difference: {max_error:e}");
    assert!(
        max_error < 1e-12,
        "offloaded results must match local pricing"
    );

    invoker.deallocate().expect("deallocation succeeds");
}
