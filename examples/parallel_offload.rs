//! Parallel offloading of a Black-Scholes batch to multiple rFaaS workers
//! (the Sec. V-F scenario): the client splits a large option batch across
//! several leased workers, scatters it with one doorbell-batched submission
//! burst, and combines the prices from the completion set.
//!
//! ```text
//! cargo run --release --example parallel_offload
//! ```

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{RFaasConfig, ResourceManager, Session, SpotExecutor};
use sandbox::{CodePackage, FunctionRegistry};
use workloads::blackscholes::price_batch;
use workloads::{blackscholes_function, generate_options, OptionBatch};

const OPTIONS: usize = 100_000;
const WORKERS: usize = 8;

fn main() {
    // Platform setup with the Black-Scholes function deployed.
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("pricing").with_function(blackscholes_function()));
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = 16 * 1024 * 1024;
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "spot-node-0",
        NodeResources::xeon_gold_6154_dual(),
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    // Lease WORKERS hot workers and grab a typed handle: option batches in,
    // one f64 price per option out.
    let session = Session::builder(&fabric, "pricing-client", &manager, "pricing")
        .config(config)
        .workers(WORKERS as u32)
        .connect()
        .expect("allocation succeeds");
    let pricer = session
        .function::<OptionBatch, [f64]>("blackscholes")
        .expect("blackscholes is deployed");

    // Generate the batch, split it across the workers and scatter it with
    // one doorbell-batched submission burst.
    let options = generate_options(OPTIONS, 7);
    let per_worker = OPTIONS.div_ceil(WORKERS);
    let chunks: Vec<OptionBatch> = options
        .chunks(per_worker)
        .map(|c| OptionBatch(c.to_vec()))
        .collect();
    let start = session.clock().now();
    let set = pricer.map_workers(chunks.iter()).expect("scatter succeeds");
    let stats = set.stats();
    let remote_prices: Vec<f64> = set
        .wait_all()
        .expect("offloaded pricing succeeds")
        .into_iter()
        .flatten()
        .collect();
    let elapsed = session.clock().now().saturating_since(start);

    // Verify the remote prices against a local computation.
    let local_prices = price_batch(&options);
    assert_eq!(remote_prices.len(), local_prices.len());
    let max_error = remote_prices
        .iter()
        .zip(local_prices.iter())
        .map(|(r, l)| (r - l).abs())
        .fold(0.0f64, f64::max);

    println!("priced {OPTIONS} options on {WORKERS} remote workers");
    println!(
        "scatter submission: {} WQEs over {} doorbell(s), {} chained, posted in {}",
        stats.submissions, stats.doorbells, stats.chained_wqes, stats.post_time
    );
    println!("batch completion time (virtual): {elapsed}");
    println!("max |remote - local| price difference: {max_error:e}");
    assert!(
        max_error < 1e-12,
        "offloaded results must match local pricing"
    );
    assert_eq!(stats.doorbells, 1, "the scatter must share one doorbell");

    session.close().expect("deallocation succeeds");
}
