#!/usr/bin/env python3
"""Perf-snapshot harness: run every figure binary in --quick mode, scrape the
machine-readable `## json` rows into a single bench-report.json, and diff the
gated metrics against the committed BENCH_BASELINE.json.

The simulation is virtual-time deterministic, so the numbers are bit-stable
run-to-run; the +/-15% tolerance exists to absorb intentional model
recalibrations, not measurement noise. Anything outside it is a perf
regression (or an improvement that should be committed as the new baseline).

Usage:
  scripts/perf_snapshot.py collect [--report bench-report.json]
      Run every crates/bench/src/bin/fig*.rs with --quick and write the
      scraped rows to the report file.
  scripts/perf_snapshot.py diff [--report ...] [--baseline BENCH_BASELINE.json]
      Compare the report against the baseline gates; non-zero exit on any
      violation. Run `collect` first (CI uploads the report artifact between
      the two steps).
  scripts/perf_snapshot.py refresh [--report ...] [--baseline ...]
      Rewrite the baseline's gate values from an existing report (after an
      intentional performance change; commit the result).
"""

import argparse
import glob
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def fig_binaries():
    paths = sorted(glob.glob(os.path.join(REPO, "crates/bench/src/bin/fig*.rs")))
    if not paths:
        sys.exit("no figure binaries found under crates/bench/src/bin")
    return [os.path.splitext(os.path.basename(p))[0] for p in paths]


def scrape_json_rows(stdout):
    """All JSON rows from every `## json` section of a binary's output."""
    rows = []
    in_section = False
    for line in stdout.splitlines():
        stripped = line.strip()
        if stripped == "## json":
            in_section = True
            continue
        if not in_section:
            continue
        if not stripped.startswith("{"):
            in_section = False
            continue
        rows.append(json.loads(stripped))
    return rows


def collect(report_path):
    report = {"mode": "--quick", "binaries": {}}
    for name in fig_binaries():
        print(f"::group::{name}", flush=True)
        proc = subprocess.run(
            ["cargo", "run", "--release", "-p", "rfaas-bench", "--bin", name, "--", "--quick"],
            cwd=REPO,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        print(proc.stdout, flush=True)
        print("::endgroup::", flush=True)
        if proc.returncode != 0:
            sys.exit(f"{name} failed with exit code {proc.returncode}")
        rows = scrape_json_rows(proc.stdout)
        if not rows:
            print(f"warning: {name} emitted no '## json' rows", file=sys.stderr)
        report["binaries"][name] = rows
    with open(report_path, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    total = sum(len(rows) for rows in report["binaries"].values())
    print(f"wrote {report_path}: {len(report['binaries'])} binaries, {total} rows")


def find_row(report, gate):
    for row in report["binaries"].get(gate["bin"], []):
        if row["series"] == gate["series"] and abs(row["x"] - gate["x"]) < 1e-9:
            return row
    return None


def gate_label(gate):
    return f"{gate['bin']} / {gate['series']} @ x={gate['x']} ({gate['metric']})"


def diff(report_path, baseline_path):
    with open(report_path) as f:
        report = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    tolerance = baseline["tolerance_pct"] / 100.0
    failures = []
    print(f"{'gate':<78} {'baseline':>12} {'current':>12} {'delta':>8}")
    for gate in baseline["gates"]:
        row = find_row(report, gate)
        label = gate_label(gate)
        if row is None:
            failures.append(f"{label}: row missing from report")
            print(f"{label:<78} {gate['value']:>12.3f} {'MISSING':>12} {'':>8}")
            continue
        current = row[gate["metric"]]
        base = gate["value"]
        if base == 0:
            # A zero baseline would make the relative gate vacuous forever;
            # it only happens when a refresh captured a degenerate run.
            failures.append(f"{label}: baseline value is 0 — re-collect and refresh")
            print(f"{label:<78} {base:>12.3f} {current:>12.3f} {'BAD BASE':>8}")
            continue
        delta = (current - base) / base
        verdict = "FAIL" if abs(delta) > tolerance else "ok"
        print(f"{label:<78} {base:>12.3f} {current:>12.3f} {delta:>+7.1%} {verdict}")
        if abs(delta) > tolerance:
            failures.append(
                f"{label}: {current:.3f} vs baseline {base:.3f} ({delta:+.1%}, "
                f"tolerance +/-{baseline['tolerance_pct']}%)"
            )
    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        print(
            "\nIf the change is intentional, refresh the baseline:\n"
            "  python3 scripts/perf_snapshot.py collect && "
            "python3 scripts/perf_snapshot.py refresh\nand commit BENCH_BASELINE.json.",
            file=sys.stderr,
        )
        sys.exit(1)
    print(f"\nperf gate passed: {len(baseline['gates'])} gates within "
          f"+/-{baseline['tolerance_pct']}%")


def refresh(report_path, baseline_path):
    with open(report_path) as f:
        report = json.load(f)
    with open(baseline_path) as f:
        baseline = json.load(f)
    missing = []
    for gate in baseline["gates"]:
        row = find_row(report, gate)
        if row is None:
            missing.append(gate_label(gate))
            continue
        gate["value"] = row[gate["metric"]]
    if missing:
        sys.exit("cannot refresh, rows missing: " + ", ".join(missing))
    with open(baseline_path, "w") as f:
        json.dump(baseline, f, indent=2)
        f.write("\n")
    print(f"refreshed {len(baseline['gates'])} gate values in {baseline_path}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=["collect", "diff", "refresh"])
    parser.add_argument("--report", default=os.path.join(REPO, "bench-report.json"))
    parser.add_argument("--baseline", default=os.path.join(REPO, "BENCH_BASELINE.json"))
    args = parser.parse_args()
    if args.command == "collect":
        collect(args.report)
    elif args.command == "diff":
        diff(args.report, args.baseline)
    else:
        refresh(args.report, args.baseline)


if __name__ == "__main__":
    main()
