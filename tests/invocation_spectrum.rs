//! Integration tests for the hot/warm/cold invocation spectrum (Fig. 5/6,
//! Sec. V-A): the paper's latency hierarchy must hold in the simulated
//! latency model, and hot workers must demote to warm after spinning past
//! the configurable hot-poll timeout (Sec. III-C).

use rfaas::{AllocationPolicy, PollingMode, RFaasConfig};
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::{median, SimDuration};

/// Median round-trip of `repetitions` echo invocations on a leased worker.
///
/// Driven through `Session::raw()`: the spectrum pins the zero-copy path
/// (pre-registered buffers, explicit payload lengths), which is exactly what
/// the raw escape hatch exists for.
fn leased_median_us(mode: PollingMode, payload: usize, repetitions: usize) -> f64 {
    let testbed = Testbed::new(1);
    let session = testbed.allocated_session("spectrum-client", 1, SandboxType::BareMetal, mode);
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(payload.max(8));
    let output = alloc.output(payload.max(8));
    input
        .write_payload(&workloads::generate_payload(payload, 11))
        .unwrap();
    invoker
        .invoke_sync("echo", &input, payload, &output)
        .unwrap();
    let samples: Vec<f64> = (0..repetitions)
        .map(|_| {
            invoker
                .invoke_sync("echo", &input, payload, &output)
                .unwrap()
                .1
                .as_micros_f64()
        })
        .collect();
    median(&samples)
}

/// Median latency of full cold invocations: lease + spawn + connect + first
/// invocation, one fresh platform per sample.
fn cold_median_us(payload: usize, repetitions: usize) -> f64 {
    let samples: Vec<f64> = (0..repetitions)
        .map(|rep| {
            let testbed = Testbed::new(1);
            let session = testbed.allocated_session(
                &format!("spectrum-cold-{rep}"),
                1,
                SandboxType::BareMetal,
                PollingMode::Hot,
            );
            let invoker = session.raw();
            let cold_start = session.cold_start().unwrap().total();
            let alloc = invoker.allocator();
            let input = alloc.input(payload.max(8));
            let output = alloc.output(payload.max(8));
            input
                .write_payload(&workloads::generate_payload(payload, 11))
                .unwrap();
            let (_, rtt) = invoker
                .invoke_sync("echo", &input, payload, &output)
                .unwrap();
            session.close().unwrap();
            (cold_start + rtt).as_micros_f64()
        })
        .collect();
    median(&samples)
}

#[test]
fn spectrum_ordering_hot_warm_cold() {
    let hot = leased_median_us(PollingMode::Hot, 8, 60);
    let warm = leased_median_us(PollingMode::Warm, 8, 60);
    let cold = cold_median_us(8, 5);
    // The hierarchy of Fig. 5: hot < warm < cold, with at least an order of
    // magnitude between hot and cold (the paper reports nearly four).
    assert!(hot < warm, "hot {hot} us must beat warm {warm} us");
    assert!(warm < cold, "warm {warm} us must beat cold {cold} us");
    assert!(
        cold >= 10.0 * hot,
        "cold ({cold} us) must be >= 10x hot ({hot} us)"
    );
    // Sanity-pin the absolute scales to the paper's ballpark.
    assert!((3.0..6.0).contains(&hot), "hot median {hot} us");
    assert!((6.0..12.0).contains(&warm), "warm median {warm} us");
    assert!(cold > 10_000.0, "cold median {cold} us should be >= 10 ms");
}

#[test]
fn fork_tier_sits_between_warm_and_cold() {
    // The fork tier extends the spectrum: a forked allocation plus its
    // fault-paying first invocation must beat the full cold path by orders
    // of magnitude while staying above a plain leased warm invocation, and
    // once the page map is resident the forked child *is* a warm executor.
    let mut config = RFaasConfig::paper_calibration();
    config.warm_pool_capacity = 1;
    let testbed = Testbed::with_config(1, config);

    // Park a warm parent: one cold allocation, released.
    let parent = testbed
        .session("fork-parent")
        .polling(PollingMode::Warm)
        .connect()
        .unwrap();
    let cold_setup = {
        let cold = parent.cold_start().unwrap();
        (cold.spawn_workers + cold.submit_code).as_micros_f64()
    };
    parent.close().unwrap();

    let session = testbed
        .session("fork-child")
        .polling(PollingMode::Warm)
        .allocation_policy(AllocationPolicy::Fork)
        .connect()
        .unwrap();
    let fork = session.stats().fork.expect("forked provisioning");
    let forked_setup = {
        let cold = session.cold_start().unwrap();
        (cold.spawn_workers + cold.submit_code).as_micros_f64()
    };
    assert!(
        forked_setup < 100.0 && cold_setup / forked_setup >= 100.0,
        "forked setup {forked_setup} us vs cold {cold_setup} us"
    );

    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input
        .write_payload(&workloads::generate_payload(8, 11))
        .unwrap();
    // Early invocations each pay one prefetch batch of page faults on top
    // of the warm path.
    let first = invoker
        .invoke_sync("echo", &input, 8, &output)
        .unwrap()
        .1
        .as_micros_f64();
    let mut rtts = vec![first];
    while !fork.is_complete() {
        rtts.push(
            invoker
                .invoke_sync("echo", &input, 8, &output)
                .unwrap()
                .1
                .as_micros_f64(),
        );
    }
    // Steady state: the faulted-in child matches the plain warm band.
    let warm = leased_median_us(PollingMode::Warm, 8, 30);
    let steady = invoker
        .invoke_sync("echo", &input, 8, &output)
        .unwrap()
        .1
        .as_micros_f64();
    assert!(
        first > warm,
        "a fault-paying invocation ({first} us) must exceed warm ({warm} us)"
    );
    assert!(
        (steady - warm).abs() < 2.0,
        "steady forked invocation {steady} us must match the warm band {warm} us"
    );
    // The whole fault-in residue stays microseconds — nowhere near a second
    // cold start.
    let residue: f64 = rtts.iter().sum();
    assert!(
        residue < 1_000.0,
        "total fault-in residue {residue} us must stay µs-scale"
    );
    assert_eq!(fork.pages_faulted(), fork.total_pages());
}

#[test]
fn spectrum_ordering_holds_across_payload_sizes() {
    for payload in [1usize, 1024, 16 * 1024] {
        let hot = leased_median_us(PollingMode::Hot, payload, 30);
        let warm = leased_median_us(PollingMode::Warm, payload, 30);
        assert!(
            hot < warm,
            "hot {hot} us must beat warm {warm} us at {payload} B"
        );
    }
}

#[test]
fn hot_worker_demotes_to_warm_after_the_poll_timeout() {
    let config = RFaasConfig::paper_calibration();
    let testbed = Testbed::with_config(1, config.clone());
    let session = testbed.allocated_session(
        "demotion-client",
        1,
        SandboxType::BareMetal,
        PollingMode::Hot,
    );
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input.write_payload(&[7u8; 8]).unwrap();

    // Back-to-back invocations stay hot.
    invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    let (_, hot_rtt) = invoker.invoke_sync("echo", &input, 8, &output).unwrap();

    let process = testbed.executors[0]
        .allocator()
        .processes()
        .pop()
        .expect("live executor process");
    assert_eq!(process.lock().workers()[0].mode(), PollingMode::Hot);
    assert_eq!(process.lock().stats().demotions, 0);

    // One idle gap past the budget: the worker demotes, the polling bill is
    // capped at the budget, and the invocation pays the warm wake-up.
    invoker.clock().advance(config.hot_poll_timeout * 3);
    let (_, demoted_rtt) = invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    {
        let process = process.lock();
        assert_eq!(process.workers()[0].mode(), PollingMode::Warm);
        let stats = process.stats();
        assert_eq!(stats.demotions, 1);
        assert!(stats.hot_poll_time >= config.hot_poll_timeout);
        assert!(
            stats.hot_poll_time < config.hot_poll_timeout + SimDuration::from_millis(1),
            "billed polling {} must be capped at the {} budget",
            stats.hot_poll_time,
            config.hot_poll_timeout
        );
    }
    assert!(
        demoted_rtt > hot_rtt,
        "demoted rtt {demoted_rtt} must exceed hot rtt {hot_rtt}"
    );

    // Once warm, latencies settle at the warm level: several microseconds
    // above hot, far below cold.
    let warm_samples: Vec<f64> = (0..30)
        .map(|_| {
            invoker
                .invoke_sync("echo", &input, 8, &output)
                .unwrap()
                .1
                .as_micros_f64()
        })
        .collect();
    let warm_median = median(&warm_samples);
    assert!(
        warm_median > hot_rtt.as_micros_f64() + 2.0,
        "post-demotion median {warm_median} us vs hot {hot_rtt}"
    );
    assert!(warm_median < 20.0, "post-demotion median {warm_median} us");
    assert_eq!(process.lock().stats().demotions, 1, "demotion is one-shot");
}

#[test]
fn adaptive_workers_bill_at_most_the_budget_per_idle_gap() {
    // An adaptive worker parks after its fallback window, so a long idle
    // gap must not be billed as 30 s of phantom polling — only up to the
    // hot-poll budget — and it never demotes (it already self-regulates).
    let config = RFaasConfig::paper_calibration();
    let testbed = Testbed::with_config(1, config.clone());
    let session = testbed.allocated_session(
        "adaptive-client",
        1,
        SandboxType::BareMetal,
        PollingMode::Adaptive,
    );
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input.write_payload(&[7u8; 8]).unwrap();
    invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    invoker.clock().advance(SimDuration::from_secs(30));
    invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    let process = testbed.executors[0].allocator().processes().pop().unwrap();
    let process = process.lock();
    assert_eq!(process.workers()[0].mode(), PollingMode::Adaptive);
    let stats = process.stats();
    assert_eq!(stats.demotions, 0);
    assert!(
        stats.hot_poll_time <= config.hot_poll_timeout + SimDuration::from_millis(1),
        "adaptive polling bill {} must be capped at the {} budget",
        stats.hot_poll_time,
        config.hot_poll_timeout
    );
}

#[test]
fn disabling_the_timeout_keeps_workers_hot_forever() {
    let mut config = RFaasConfig::paper_calibration();
    config.hot_poll_timeout = SimDuration::ZERO;
    let testbed = Testbed::with_config(1, config);
    let session =
        testbed.allocated_session("no-demotion", 1, SandboxType::BareMetal, PollingMode::Hot);
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input.write_payload(&[7u8; 8]).unwrap();
    invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    invoker.clock().advance(SimDuration::from_secs(30));
    invoker.invoke_sync("echo", &input, 8, &output).unwrap();
    let process = testbed.executors[0].allocator().processes().pop().unwrap();
    let process = process.lock();
    assert_eq!(process.workers()[0].mode(), PollingMode::Hot);
    let stats = process.stats();
    assert_eq!(stats.demotions, 0);
    // Without a cap, the worker bills the whole 30 s spin (the pricing
    // incentive for clients to pick warm or adaptive executors).
    assert!(stats.hot_poll_time >= SimDuration::from_secs(30));
}
