//! Determinism regression: the whole point of the virtual-time fabric is
//! that experiments are machine-independent and reproducible. Two runs of
//! the same end-to-end scenario with the same seed must produce
//! byte-identical placement decisions, latency histograms and billing
//! totals — any drift means wall-clock scheduling or hash-map iteration
//! order leaked into the model.

use rfaas::{LeaseRequest, PollingMode};
use rfaas_bench::{Testbed, PACKAGE};
use sim_core::{DeterministicRng, LatencyHistogram};

/// One end-to-end scenario: three executors, two sequential clients, a
/// seeded mix of lease shapes, payload sizes, renewals and re-allocations.
/// Returns a byte-exact transcript of everything the platform decided.
fn run_scenario(seed: u64) -> String {
    let testbed = Testbed::new(3);
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();
    let mut histogram = LatencyHistogram::new();

    for client_idx in 0..2 {
        let mut invoker = testbed.invoker(&format!("det-client-{client_idx}"));
        for round in 0..3 {
            let cores = rng.range_u64(1, 4) as u32;
            invoker
                .allocate(
                    LeaseRequest::single_worker(PACKAGE)
                        .with_cores(cores)
                        .with_memory_mib(2048),
                    PollingMode::Hot,
                )
                .unwrap();
            let lease = invoker.lease().unwrap();
            transcript.push_str(&format!(
                "client {client_idx} round {round}: lease cores={} node={}\n",
                lease.cores, lease.executor_node
            ));

            let alloc = invoker.allocator();
            let invocations = rng.range_u64(2, 6);
            for _ in 0..invocations {
                let payload = rng.range_u64(1, 4096) as usize;
                let input = alloc.input(payload.max(8));
                let output = alloc.output(payload.max(8));
                input
                    .write_payload(&workloads::generate_payload(payload, seed))
                    .unwrap();
                let (len, rtt) = invoker
                    .invoke_sync("echo", &input, payload, &output)
                    .unwrap();
                assert_eq!(len, payload);
                histogram.record(rtt);
                transcript.push_str(&format!("invoke {payload} B -> {} ns\n", rtt.as_nanos()));
            }
            invoker.deallocate().unwrap();
        }
    }

    // Latency histogram, bit-exact.
    transcript.push_str(&format!(
        "histogram: n={} min={} p50={} p99={} max={}\n",
        histogram.count(),
        histogram.min().as_nanos(),
        histogram.median().as_nanos(),
        histogram.percentile(0.99).as_nanos(),
        histogram.max().as_nanos()
    ));

    // Billing totals, bit-exact: usage words are integers, the monetary
    // total is compared through its IEEE-754 bit pattern.
    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

#[test]
fn same_seed_produces_byte_identical_runs() {
    let first = run_scenario(0xD5EED);
    let second = run_scenario(0xD5EED);
    assert_eq!(
        first, second,
        "placement, latencies or billing diverged between identical runs"
    );
}

#[test]
fn different_seeds_actually_change_the_scenario() {
    // Guards the test above against vacuity: if the seed were ignored, the
    // byte-identical assertion would hold trivially.
    let a = run_scenario(1);
    let b = run_scenario(2);
    assert_ne!(a, b, "the seed must drive payloads and lease shapes");
}
