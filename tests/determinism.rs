//! Determinism regression: the whole point of the virtual-time fabric is
//! that experiments are machine-independent and reproducible. Two runs of
//! the same end-to-end scenario with the same seed must produce
//! byte-identical placement decisions, latency histograms and billing
//! totals — any drift means wall-clock scheduling or hash-map iteration
//! order leaked into the model.

use cluster_sim::{NodeResources, TenantFleet};
use rdma_fabric::Fabric;
use rfaas::{
    GroupLifecycleDriver, ManagerGroup, PollingMode, RFaasConfig, Reactor, Session, SpotExecutor,
};
use rfaas_bench::{evaluation_package, Testbed, PACKAGE};
use sandbox::FunctionRegistry;
use sandbox::SandboxType;
use sim_core::{DeterministicRng, LatencyHistogram, SimDuration, VirtualClock};

/// One end-to-end scenario: three executors, two sequential clients, a
/// seeded mix of lease shapes, payload sizes, renewals and re-allocations.
/// Returns a byte-exact transcript of everything the platform decided.
fn run_scenario(seed: u64) -> String {
    let testbed = Testbed::new(3);
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();
    let mut histogram = LatencyHistogram::new();

    for client_idx in 0..2 {
        for round in 0..3 {
            let cores = rng.range_u64(1, 4) as u32;
            let session = testbed
                .session(&format!("det-client-{client_idx}"))
                .workers(cores)
                .memory_mib(2048)
                .connect()
                .unwrap();
            let lease = session.lease().unwrap();
            transcript.push_str(&format!(
                "client {client_idx} round {round}: lease cores={} node={}\n",
                lease.cores, lease.executor_node
            ));

            let echo = session.function::<[u8], [u8]>("echo").unwrap();
            let invocations = rng.range_u64(2, 6);
            for _ in 0..invocations {
                let payload = rng.range_u64(1, 4096) as usize;
                let data = workloads::generate_payload(payload, seed);
                let (reply, rtt) = echo.invoke_timed(&data[..]).unwrap();
                assert_eq!(reply.len(), payload);
                histogram.record(rtt);
                transcript.push_str(&format!("invoke {payload} B -> {} ns\n", rtt.as_nanos()));
            }
            session.close().unwrap();
        }
    }

    // Latency histogram, bit-exact.
    transcript.push_str(&format!(
        "histogram: n={} min={} p50={} p99={} max={}\n",
        histogram.count(),
        histogram.min().as_nanos(),
        histogram.median().as_nanos(),
        histogram.percentile(0.99).as_nanos(),
        histogram.max().as_nanos()
    ));

    // Billing totals, bit-exact: usage words are integers, the monetary
    // total is compared through its IEEE-754 bit pattern.
    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

#[test]
fn same_seed_produces_byte_identical_runs() {
    let first = run_scenario(0xD5EED);
    let second = run_scenario(0xD5EED);
    assert_eq!(
        first, second,
        "placement, latencies or billing diverged between identical runs"
    );
}

#[test]
fn different_seeds_actually_change_the_scenario() {
    // Guards the test above against vacuity: if the seed were ignored, the
    // byte-identical assertion would hold trivially.
    let a = run_scenario(1);
    let b = run_scenario(2);
    assert_ne!(a, b, "the seed must drive payloads and lease shapes");
}

/// The sharded multi-tenant scenario: a 4-shard manager plane, a seeded
/// tenant fleet, consistent-hash placement of executors and tenants, and the
/// full allocate→invoke→bill→release pipeline per episode. The transcript
/// pins shard assignments, lease placements (id + executor node) and the
/// per-shard billing totals bit-for-bit.
fn run_sharded_scenario(seed: u64) -> String {
    const SHARDS: usize = 4;
    let config = RFaasConfig::default();
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let group = ManagerGroup::new(&fabric, config.clone(), SHARDS);
    let mut transcript = String::new();

    // Executor partitioning is part of the pinned behaviour.
    for i in 0..12 {
        let name = format!("det-exec-{i:02}");
        let executor = SpotExecutor::new(
            &fabric,
            &name,
            NodeResources::xeon_gold_6154_dual(),
            registry.clone(),
            config.clone(),
        );
        let shard = group.register_executor(&executor);
        transcript.push_str(&format!("executor {name} -> shard {shard}\n"));
    }

    let driver = GroupLifecycleDriver::new(&group);
    let fleet = TenantFleet::generate(seed, 24, SimDuration::from_secs(10));
    let requests = fleet.requests(SimDuration::from_secs(20));
    assert!(!requests.is_empty());
    for (episode, request) in requests.iter().enumerate() {
        driver.step(request.arrival);
        let shard = group.shard_for_tenant(&request.tenant);
        let session = Session::builder(
            &fabric,
            &format!("{}-det{episode}", request.tenant),
            &group.manager_for_tenant(&request.tenant),
            PACKAGE,
        )
        .config(config.clone())
        .workers(request.cores)
        .memory_mib(request.memory_mib)
        .lease_timeout(request.lease_timeout.max(SimDuration::from_secs(30)))
        .starting_at(request.arrival)
        .connect()
        .unwrap();
        let lease = session.lease().unwrap();
        assert_eq!(group.shard_of_lease(lease.id), Some(shard));
        transcript.push_str(&format!(
            "episode {episode}: tenant {} -> shard {shard}, lease {} on {}\n",
            request.tenant, lease.id, lease.executor_node
        ));

        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let payload = workloads::generate_payload(request.payload_bytes.clamp(8, 4096), seed);
        for _ in 0..request.invocations.min(3) {
            let (reply, rtt) = echo.invoke_timed(&payload[..]).unwrap();
            assert_eq!(reply.len(), payload.len());
            transcript.push_str(&format!("  invoke -> {} ns\n", rtt.as_nanos()));
        }
        session.close().unwrap();
    }

    // Per-shard billing totals, bit-exact.
    for (shard, cost) in group.per_shard_costs().iter().enumerate() {
        transcript.push_str(&format!(
            "shard {shard} billing bits {:#018x}\n",
            cost.to_bits()
        ));
    }
    assert!(
        group.total_cost() > 0.0,
        "the sharded scenario must accrue billable usage"
    );
    transcript
}

#[test]
fn sharded_multi_tenant_runs_are_byte_identical() {
    let first = run_sharded_scenario(0x5AA5);
    let second = run_sharded_scenario(0x5AA5);
    assert_eq!(
        first, second,
        "shard assignment, placement or per-shard billing diverged between identical runs"
    );
}

#[test]
fn sharded_scenario_seeds_change_the_fleet() {
    let a = run_sharded_scenario(3);
    let b = run_sharded_scenario(4);
    assert_ne!(a, b, "the seed must drive the tenant fleet");
}

/// The reactor-driven scenario: three leases held concurrently, all of their
/// worker connections registered with one shared [`Reactor`] and all
/// submissions and pickups serialised on one shared client clock. A seeded
/// schedule hops between the sessions, so every completion travels through
/// the shared event loop's source sweep rather than a per-connection wait.
/// The transcript pins placements, per-invocation latencies, the histogram
/// bits, the reactor's pump count and the billing total bit-for-bit.
fn run_reactor_scenario(seed: u64) -> String {
    let testbed = Testbed::new(3);
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();
    let mut histogram = LatencyHistogram::new();

    let reactor = Reactor::new();
    let clock = VirtualClock::shared();
    let sessions: Vec<Session> = (0..3)
        .map(|i| {
            let workers = rng.range_u64(1, 4) as u32;
            let session = testbed
                .session(&format!("reactor-det-{i}"))
                .workers(workers)
                .memory_mib(2048)
                .reactor(&reactor)
                .clock(&clock)
                .connect()
                .unwrap();
            let lease = session.lease().unwrap();
            transcript.push_str(&format!(
                "session {i}: lease cores={} node={}\n",
                lease.cores, lease.executor_node
            ));
            session
        })
        .collect();
    let functions: Vec<_> = sessions
        .iter()
        .map(|s| s.function::<[u8], [u8]>("echo").unwrap())
        .collect();

    let mut invocations = 0u64;
    for round in 0..4 {
        for _ in 0..sessions.len() {
            let pick = rng.range_u64(0, sessions.len() as u64) as usize;
            let payload = rng.range_u64(1, 2048) as usize;
            let data = workloads::generate_payload(payload, seed);
            let (reply, rtt) = functions[pick].invoke_timed(&data[..]).unwrap();
            assert_eq!(reply.len(), payload);
            histogram.record(rtt);
            invocations += 1;
            transcript.push_str(&format!(
                "round {round}: session {pick} invoke {payload} B -> {} ns\n",
                rtt.as_nanos()
            ));
        }
    }

    // Every completion of the scenario was pumped by the shared reactor,
    // exactly once — a second pickup path would double this count.
    let stats = reactor.stats();
    assert_eq!(stats.pumped, invocations);
    transcript.push_str(&format!("reactor: pumped={}\n", stats.pumped));

    transcript.push_str(&format!(
        "histogram: n={} min={} p50={} p99={} max={}\n",
        histogram.count(),
        histogram.min().as_nanos(),
        histogram.median().as_nanos(),
        histogram.percentile(0.99).as_nanos(),
        histogram.max().as_nanos()
    ));

    drop(functions);
    for session in sessions {
        session.close().unwrap();
    }
    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

/// The pooled-connection churn scenario: one shared [`ConnectionPool`]
/// survives a seeded sequence of allocate→invoke→release episodes, so later
/// episodes re-warm QPs left behind by earlier ones. The transcript pins
/// each episode's placement, its first-contact/warm classification, the
/// connection-plane slice of the cold start in integer nanoseconds, and the
/// cumulative pool counters — any wall-clock leak in the pooled handshake or
/// the SRQ-backed dispatcher shows up as a byte diff.
fn run_pooled_churn_scenario(seed: u64) -> String {
    let testbed = Testbed::new(2);
    let pool = rdma_fabric::ConnectionPool::new();
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();

    for episode in 0..8 {
        let workers = rng.range_u64(1, 3) as u32;
        let hits_before = pool.stats().hits;
        let session = testbed
            .session(&format!("pool-det-{episode}"))
            .workers(workers)
            .memory_mib(1024)
            .connection_pool(&pool)
            .connect()
            .unwrap();
        let lease = session.lease().unwrap();
        let cold = session.cold_start().unwrap();
        let setup_ns = cold.connect_to_manager.as_nanos() + cold.connect_to_workers.as_nanos();
        let class = if pool.stats().hits > hits_before {
            "warm"
        } else {
            "first-contact"
        };
        transcript.push_str(&format!(
            "episode {episode}: workers={workers} node={} {class} setup={setup_ns} ns\n",
            lease.executor_node
        ));

        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let payload = rng.range_u64(1, 2048) as usize;
        let data = workloads::generate_payload(payload, seed);
        let (reply, rtt) = echo.invoke_timed(&data[..]).unwrap();
        assert_eq!(reply.len(), payload);
        let conn = session.stats().connections;
        transcript.push_str(&format!(
            "  invoke {payload} B -> {} ns, opened={} srq_watermark={}\n",
            rtt.as_nanos(),
            conn.connections_opened,
            conn.srq_depth_high_watermark
        ));
        session.close().unwrap();
    }

    let stats = pool.stats();
    transcript.push_str(&format!(
        "pool: hits={} misses={} returned={} evictions={}\n",
        stats.hits, stats.misses, stats.returned, stats.evictions
    ));
    assert!(stats.hits > 0, "churn over a shared pool must re-warm QPs");
    assert!(stats.misses > 0, "the first contact per executor must miss");
    transcript
}

/// The fork-tier churn scenario: one executor with a warm pool, a parked
/// parent, and a seeded sequence of fork / warm-pool / cold allocations. The
/// transcript pins each episode's provisioning class, its executor-side
/// setup cost in integer nanoseconds, the forked children's *fault
/// schedules* (which pages each RDMA READ batch fetched and what it cost),
/// the cumulative warm-pool counters and the billing total bit-for-bit — a
/// wall-clock or iteration-order leak anywhere in the fork tier shows up as
/// a byte diff.
fn run_fork_scenario(seed: u64) -> String {
    let config = RFaasConfig {
        warm_pool_capacity: 2,
        ..RFaasConfig::default()
    };
    let testbed = Testbed::with_config(1, config);
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();

    for episode in 0..6 {
        let policy = if episode == 0 {
            // The first episode always cold-spawns the parent every later
            // episode forks from or resumes.
            rfaas::AllocationPolicy::Cold
        } else if rng.range_u64(0, 2) == 0 {
            rfaas::AllocationPolicy::Fork
        } else {
            rfaas::AllocationPolicy::WarmPool
        };
        let session = testbed
            .session(&format!("fork-det-{episode}"))
            .workers(1)
            .memory_mib(1024)
            .polling(rfaas::PollingMode::Warm)
            .allocation_policy(policy)
            .connect()
            .unwrap();
        let cold = session.cold_start().unwrap();
        let setup_ns = (cold.spawn_workers + cold.submit_code).as_nanos();
        transcript.push_str(&format!(
            "episode {episode}: policy={policy:?} setup={setup_ns} ns\n"
        ));

        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        for _ in 0..rng.range_u64(1, 4) {
            let payload = rng.range_u64(1, 2048) as usize;
            let data = workloads::generate_payload(payload, seed);
            let (reply, rtt) = echo.invoke_timed(&data[..]).unwrap();
            assert_eq!(reply.len(), payload);
            transcript.push_str(&format!("  invoke {payload} B -> {} ns\n", rtt.as_nanos()));
        }
        if let Some(fork) = session.stats().fork {
            for batch in fork.fault_schedule() {
                transcript.push_str(&format!(
                    "  fault batch start={} pages={} cost={} ns\n",
                    batch.start_page,
                    batch.pages,
                    batch.cost.as_nanos()
                ));
            }
            transcript.push_str(&format!(
                "  faulted {}/{} pages in {} ns\n",
                fork.pages_faulted(),
                fork.total_pages(),
                fork.fault_time().as_nanos()
            ));
        }
        session.close().unwrap();
    }

    let pool = testbed.executors[0].allocator().warm_pool().stats();
    transcript.push_str(&format!(
        "warm pool: hits={} misses={} returned={} evictions={} rejected={}\n",
        pool.hits, pool.misses, pool.returned, pool.evictions, pool.rejected
    ));
    assert!(
        pool.returned > 0,
        "churn over an enabled pool must park parents"
    );
    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

/// The state-plane scenario: one plane shared by a seeded sequence of
/// stateful sessions. Each episode publishes seeded values, drives the
/// stateful streaming-aggregation function (running aggregate resident in
/// the plane), mixes in direct session-side gets/deletes, and occasionally
/// overwrites a hot key to force invalidation fan-out. The transcript pins
/// every key's placement (arena offset, length, version), each invocation's
/// latency, the session- and executor-side client counters (cache hits vs
/// one-sided READs), the owner-side plane counters and the billing total
/// bit-for-bit — a wall-clock or iteration-order leak anywhere in the
/// metadata service, the region allocator, the invalidation fan-out or the
/// materialise/write-back path shows up as a byte diff.
fn run_state_scenario(seed: u64) -> String {
    use rfaas::{StateKey, StatePlane};
    use workloads::AGGREGATE_KEY;

    let testbed = Testbed::new(2);
    let plane = StatePlane::new(&testbed.fabric, "det-state-owner", 16 * 1024 * 1024);
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();

    for episode in 0..4 {
        let session = testbed
            .session(&format!("state-det-{episode}"))
            .workers(1)
            .memory_mib(2048)
            .state_plane(&plane)
            .connect()
            .unwrap();
        let lease = session.lease().unwrap();
        transcript.push_str(&format!(
            "episode {episode}: lease node={}\n",
            lease.executor_node
        ));

        // Seed the aggregate and a per-episode dataset key.
        session.state().put(AGGREGATE_KEY, &[]).unwrap();
        let dataset = workloads::generate_payload(rng.range_u64(64, 4096) as usize, seed);
        let key = format!("dataset-{}", rng.range_u64(0, 3));
        session.state().put(&key, &dataset).unwrap();

        let aggregate = session
            .function::<[f64], [u8]>("stream-aggregate")
            .unwrap()
            .with_state([StateKey::read_write(AGGREGATE_KEY)])
            .unwrap();
        for _ in 0..rng.range_u64(1, 4) {
            let batch: Vec<f64> = (0..rng.range_u64(1, 32))
                .map(|_| rng.range_f64(-50.0, 50.0))
                .collect();
            let (reply, rtt) = aggregate.invoke_timed(&batch[..]).unwrap();
            let agg = workloads::StreamAggregate::decode(&reply).unwrap();
            transcript.push_str(&format!(
                "  aggregate {} readings -> count={} sum_bits={:#018x} in {} ns\n",
                batch.len(),
                agg.count,
                agg.sum.to_bits(),
                rtt.as_nanos()
            ));
        }

        // Session-side reads and the occasional delete exercise the
        // invalidation fan-out alongside the executor's cache.
        let len = session.state().get(&key).unwrap().len();
        transcript.push_str(&format!("  get {key} -> {len} B\n"));
        if rng.range_u64(0, 2) == 0 {
            let existed = session.state().delete(&key).unwrap();
            transcript.push_str(&format!("  delete {key} existed={existed}\n"));
        }

        let stats = session.stats();
        let s = stats.state_session.unwrap();
        let e = stats.state_executor.unwrap();
        transcript.push_str(&format!(
            "  session client: gets={} puts={} hits={} reads={} invalidations={}\n",
            s.gets, s.puts, s.cache_hits, s.remote_reads, s.invalidations_applied
        ));
        transcript.push_str(&format!(
            "  executor client: gets={} puts={} hits={} reads={} invalidations={}\n",
            e.gets, e.puts, e.cache_hits, e.remote_reads, e.invalidations_applied
        ));
        session.close().unwrap();
    }

    // Every committed key's placement, in key order, bit-exact.
    for (key, p) in plane.placements() {
        transcript.push_str(&format!(
            "placement {key}: offset={} len={} version={}\n",
            p.offset, p.len, p.version
        ));
    }
    let plane_stats = plane.stats();
    transcript.push_str(&format!(
        "plane: keys={} used={} control_frames={} lookups={}\n",
        plane_stats.keys, plane_stats.used_bytes, plane_stats.control_frames, plane_stats.lookups
    ));
    assert!(
        plane_stats.control_frames > 0,
        "the scenario must exercise the control path"
    );

    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

#[test]
fn state_plane_runs_are_byte_identical() {
    let first = run_state_scenario(0x57A7E);
    let second = run_state_scenario(0x57A7E);
    assert_eq!(
        first, second,
        "placements, read schedules, client counters or billing diverged between identical runs"
    );
}

#[test]
fn state_scenario_seeds_change_the_accesses() {
    let a = run_state_scenario(11);
    let b = run_state_scenario(12);
    assert_ne!(a, b, "the seed must drive keys, batches and deletes");
}

#[test]
fn fork_tier_runs_are_byte_identical() {
    let first = run_fork_scenario(0xF0CC);
    let second = run_fork_scenario(0xF0CC);
    assert_eq!(
        first, second,
        "fault schedules, pool counters or billing diverged between identical runs"
    );
}

#[test]
fn fork_scenario_seeds_change_the_episodes() {
    let a = run_fork_scenario(9);
    let b = run_fork_scenario(10);
    assert_ne!(a, b, "the seed must drive policies and payloads");
}

#[test]
fn pooled_churn_runs_are_byte_identical() {
    let first = run_pooled_churn_scenario(0xC0FFEE);
    let second = run_pooled_churn_scenario(0xC0FFEE);
    assert_eq!(
        first, second,
        "pool warmth, setup costs or SRQ watermarks diverged between identical runs"
    );
}

#[test]
fn pooled_churn_seeds_change_the_episodes() {
    let a = run_pooled_churn_scenario(7);
    let b = run_pooled_churn_scenario(8);
    assert_ne!(a, b, "the seed must drive worker counts and payloads");
}

#[test]
fn reactor_driven_runs_are_byte_identical() {
    let first = run_reactor_scenario(0xFACADE);
    let second = run_reactor_scenario(0xFACADE);
    assert_eq!(
        first, second,
        "reactor dispatch order, latencies or billing diverged between identical runs"
    );
}

#[test]
fn reactor_scenario_seeds_change_the_schedule() {
    let a = run_reactor_scenario(5);
    let b = run_reactor_scenario(6);
    assert_ne!(
        a, b,
        "the seed must drive the session schedule and payloads"
    );
}

/// The adaptive-polling scenario: one adaptive worker, a seeded train of
/// invocations separated by seeded idle gaps that straddle the
/// `hot_poll_fallback` spin window. Short gaps find the worker still
/// spinning (picked up inside the `unparked_until` window), long gaps find
/// it parked — so the transcript pins both branches of the adaptive
/// park/refresh decision, which previously had no determinism coverage.
fn run_adaptive_scenario(seed: u64) -> String {
    let config = RFaasConfig::paper_calibration();
    let testbed = Testbed::with_config(1, config.clone());
    let mut rng = DeterministicRng::new(seed);
    let mut transcript = String::new();

    let session = testbed.allocated_session(
        "adaptive-det",
        1,
        SandboxType::BareMetal,
        PollingMode::Adaptive,
    );
    let invoker = session.raw();
    let alloc = invoker.allocator();
    let input = alloc.input(4096);
    let output = alloc.output(4096);

    const ROUNDS: u64 = 24;
    for round in 0..ROUNDS {
        let payload = rng.range_u64(1, 2048) as usize;
        let data = workloads::generate_payload(payload, seed);
        input.write_payload(&data).unwrap();
        let (_, rtt) = invoker
            .invoke_sync("echo", &input, payload, &output)
            .unwrap();
        transcript.push_str(&format!(
            "round {round}: invoke {payload} B -> {} ns\n",
            rtt.as_nanos()
        ));
        // Seeded idle gap: roughly half stay inside the adaptive spin
        // window (worker picked up unparked), the rest sleep far past it
        // (worker picked up parked, spin billed at most the fallback).
        let gap = if rng.range_u64(0, 1) == 0 {
            SimDuration::from_millis(rng.range_u64(1, 40))
        } else {
            SimDuration::from_millis(rng.range_u64(100, 400))
        };
        invoker.clock().advance(gap);
        transcript.push_str(&format!("gap {} ns\n", gap.as_nanos()));
    }

    let process = testbed.executors[0].allocator().processes().pop().unwrap();
    let process = process.lock();
    let stats = process.stats();
    assert_eq!(
        process.workers()[0].mode(),
        PollingMode::Adaptive,
        "adaptive workers self-regulate instead of demoting"
    );
    assert_eq!(stats.demotions, 0);
    // The long gaps above sum to seconds of idle time; if the parked branch
    // were not taken the spin bill would cover those gaps wholesale instead
    // of being clipped to one fallback window per pickup.
    assert!(
        stats.hot_poll_time <= config.hot_poll_fallback * ROUNDS,
        "adaptive spin bill {} must be clipped to one {} window per pickup",
        stats.hot_poll_time,
        config.hot_poll_fallback
    );
    transcript.push_str(&format!(
        "adaptive: mode={:?} demotions={} hot_poll_ns={}\n",
        process.workers()[0].mode(),
        stats.demotions,
        stats.hot_poll_time.as_nanos()
    ));
    let total_cost = testbed.manager.total_cost();
    transcript.push_str(&format!(
        "billing: total_cost_bits={:#018x}\n",
        total_cost.to_bits()
    ));
    assert!(total_cost > 0.0, "the scenario must accrue billable usage");
    transcript
}

#[test]
fn adaptive_polling_runs_are_byte_identical() {
    let first = run_adaptive_scenario(0xADA9);
    let second = run_adaptive_scenario(0xADA9);
    assert_eq!(
        first, second,
        "adaptive park/refresh decisions, latencies or billing diverged between identical runs"
    );
}

#[test]
fn adaptive_scenario_seeds_change_the_timeline() {
    let a = run_adaptive_scenario(13);
    let b = run_adaptive_scenario(14);
    assert_ne!(a, b, "the seed must drive payloads and idle gaps");
}
