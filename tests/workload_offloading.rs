//! Integration tests offloading every evaluation workload through the full
//! rFaaS stack — via the typed session API — and checking the results
//! against local execution.

use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use workloads::blackscholes::price_batch;
use workloads::jacobi::{encode_install, encode_iterate, jacobi_sweep_rows};
use workloads::matmul::{encode_matmul_request, multiply_rows, random_matrix};
use workloads::{generate_options, Image, InferenceModel, InputSizes, JacobiSystem, OptionBatch};

#[test]
fn offloaded_blackscholes_matches_local_pricing() {
    let testbed = Testbed::new(1);
    let session =
        testbed.allocated_session("bs-client", 2, SandboxType::BareMetal, PollingMode::Hot);
    let options = OptionBatch(generate_options(10_000, 17));
    let pricer = session
        .function::<OptionBatch, [f64]>("blackscholes")
        .unwrap()
        .with_output_capacity(options.len() * 8);
    let (prices, rtt) = pricer.invoke_timed(&options).unwrap();
    assert_eq!(prices, price_batch(&options));
    // 10 000 options at 80 ns each plus ~40 us of data movement.
    let rtt_us = rtt.as_micros_f64();
    assert!(
        (500.0..2_000.0).contains(&rtt_us),
        "pricing RTT {rtt_us} us"
    );
}

#[test]
fn offloaded_thumbnailer_produces_a_valid_thumbnail() {
    let testbed = Testbed::new(1);
    let session =
        testbed.allocated_session("thumb-client", 1, SandboxType::Docker, PollingMode::Warm);
    let image = Image::synthetic(InputSizes::THUMBNAIL_LARGE, 9);
    // Image in, image out: the result decodes straight through the codec.
    let thumbnailer = session
        .function::<Image, Image>("thumbnailer")
        .unwrap()
        .with_output_capacity(300 * 1024);
    let (thumbnail, rtt) = thumbnailer.invoke_timed(&image).unwrap();
    assert_eq!(thumbnail.width, 256);
    assert_eq!(thumbnail.height, 256);
    // End-to-end latency is dominated by the ~115 ms resize cost model.
    let rtt_ms = rtt.as_millis_f64();
    assert!(
        (80.0..200.0).contains(&rtt_ms),
        "thumbnailer RTT {rtt_ms} ms"
    );
}

#[test]
fn offloaded_inference_matches_local_model() {
    let testbed = Testbed::new(1);
    let session =
        testbed.allocated_session("ml-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let image = Image::synthetic(InputSizes::INFERENCE_SMALL, 23);
    let classify = session
        .function::<Image, [f64]>("image-recognition")
        .unwrap()
        .with_output_capacity(1000 * 8);
    let remote_logits = classify.invoke(&image).unwrap();
    let local_logits = InferenceModel::pretrained(50).forward(&image);
    assert_eq!(remote_logits.len(), local_logits.len());
    for (r, l) in remote_logits.iter().zip(local_logits.iter()) {
        assert!((r - l).abs() < 1e-9);
    }
}

#[test]
fn offloaded_matmul_half_matches_local_kernel() {
    let n = 96;
    let mut config = rfaas::RFaasConfig::paper_calibration();
    config.max_payload_bytes = 2 * n * n * 8 + 4096;
    let testbed = Testbed::with_config(1, config);
    let session = testbed
        .session("mm-client")
        .memory_mib(2048)
        .connect()
        .unwrap();
    let a = random_matrix(n, 1);
    let b = random_matrix(n, 2);
    let request = encode_matmul_request(&a, &b, n, n / 2, n);
    let matmul = session
        .function::<[u8], [f64]>("matmul")
        .unwrap()
        .with_output_capacity((n / 2) * n * 8);
    let remote = matmul.invoke(&request[..]).unwrap();
    let local = multiply_rows(&a, &b, n, n / 2, n);
    assert_eq!(remote.len(), local.len());
    for (r, l) in remote.iter().zip(local.iter()) {
        assert!((r - l).abs() < 1e-9);
    }
}

#[test]
fn distributed_jacobi_converges_with_cached_system() {
    let n = 120;
    let iterations = 60;
    let mut config = rfaas::RFaasConfig::paper_calibration();
    config.max_payload_bytes = n * n * 8 + 64 * 1024;
    let testbed = Testbed::with_config(1, config.clone());
    let session = testbed
        .session("jacobi-client")
        .memory_mib(2048)
        .connect()
        .unwrap();
    let system = JacobiSystem::generate(n, 77);
    let jacobi = session
        .function::<[u8], [f64]>("jacobi")
        .unwrap()
        .with_output_capacity(n * 8);
    let mut x = vec![0.0f64; n];
    let mut install_bytes = 0usize;
    let mut iterate_bytes = 0usize;
    for iteration in 0..iterations {
        let message = if iteration == 0 {
            let m = encode_install(&system, &x, n / 2, n);
            install_bytes = m.len();
            m
        } else {
            let m = encode_iterate(&x, n / 2, n);
            iterate_bytes = m.len();
            m
        };
        let remote = jacobi.invoke(&message[..]).unwrap();
        let local = jacobi_sweep_rows(&system, &x, 0, n / 2);
        x[..n / 2].copy_from_slice(&local);
        x[n / 2..].copy_from_slice(&remote);
    }
    // The warm-executor caching pays off: iterate messages are tiny.
    assert!(
        iterate_bytes * 20 < install_bytes,
        "{iterate_bytes} vs {install_bytes}"
    );
    // And the distributed solve converges like the local one.
    let local_solution = workloads::jacobi_solve(&system, iterations);
    assert!(system.residual(&x) < 1e-4);
    assert!((system.residual(&x) - system.residual(&local_solution)).abs() < 1e-4);
}
