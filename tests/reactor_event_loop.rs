//! Reactor regression tests at depth: the completion-driven event loop must
//! keep a thousand in-flight invocations straight — every scattered input
//! gathered exactly once, no lost or duplicated completions, and no
//! quadratic rescans hiding behind `wait_any` (the pre-reactor
//! implementation re-scanned every entry per call, so a 1k-entry set cost
//! ~1M probes to drain; the reactor pumps each completion exactly once and
//! resolves waiters off a ready queue).

use cluster_sim::NodeResources;
use rdma_fabric::Fabric;
use rfaas::{PollingMode, RFaasConfig, Reactor, ResourceManager, Session, SpotExecutor};
use rfaas_bench::{evaluation_package, PACKAGE};
use sandbox::FunctionRegistry;
use sim_core::VirtualClock;

const DEPTH: usize = 1024;

/// One session with 1024 workers, one scatter of 1024 distinct payloads,
/// one reactor drain. Pins the exactly-once contract at depth: each input
/// index is yielded once with its own bytes, and the reactor's lifetime
/// counters show each completion was pumped and dispatched a single time —
/// the counters are how a reintroduced rescan (pumping the same source
/// repeatedly per waiter) would show up.
#[test]
fn wait_any_drains_1024_entries_exactly_once() {
    // Keep per-worker input buffers small: registration is sized by
    // `max_payload_bytes` and this test is about completion bookkeeping,
    // not payload bandwidth.
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = 256;

    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let manager = ResourceManager::new(&fabric, config.clone());
    let executor = SpotExecutor::new(
        &fabric,
        "reactor-depth-exec",
        NodeResources {
            cores: DEPTH as u32,
            memory_mib: 64 * 1024,
        },
        registry,
        config.clone(),
    );
    manager.register_executor(&executor);

    let reactor = Reactor::new();
    let clock = VirtualClock::shared();
    let session = Session::builder(&fabric, "reactor-depth-client", &manager, PACKAGE)
        .config(config)
        .workers(DEPTH as u32)
        .memory_mib(8 * 1024)
        .polling(PollingMode::Hot)
        .reactor(&reactor)
        .clock(&clock)
        .connect()
        .expect("allocating 1024 workers succeeds");
    let echo = session
        .function::<[u8], [u8]>("echo")
        .expect("echo deployed")
        .with_output_capacity(8);

    // Distinct payload per index so a swapped or duplicated dispatch is
    // visible in the bytes, not just the counts.
    let payloads: Vec<Vec<u8>> = (0..DEPTH)
        .map(|i| vec![i as u8, (i >> 8) as u8, 0xA5, 0x5A])
        .collect();
    let mut set = echo
        .map_workers(payloads.iter().map(|p| &p[..]))
        .expect("scatter of 1024 inputs succeeds");

    let mut seen = vec![false; DEPTH];
    let mut gathered = 0usize;
    while let Some((index, reply)) = set.wait_any().expect("gather succeeds") {
        assert!(!seen[index], "input {index} yielded twice");
        seen[index] = true;
        assert_eq!(&reply[..], &payloads[index][..], "reply bytes for {index}");
        gathered += 1;
    }
    assert_eq!(gathered, DEPTH, "every scattered input must be gathered");
    assert!(seen.iter().all(|s| *s));

    let stats = reactor.stats();
    assert_eq!(
        stats.pumped, DEPTH as u64,
        "each completion is pumped out of its connection exactly once"
    );
    assert_eq!(
        stats.dispatched, DEPTH as u64,
        "each armed continuation dispatches exactly once"
    );

    drop(set);
    session.close().expect("release succeeds");
}

/// Two sessions on one reactor, drained in the "wrong" order: gathering the
/// second session's set first forces the reactor to stash the first
/// session's completions while pumping for the second, and the first set
/// must then resolve entirely off its ready queue. Exactly-once still holds
/// across the session boundary.
#[test]
fn cross_session_gather_order_does_not_lose_completions() {
    const WORKERS: usize = 32;
    let mut config = RFaasConfig::paper_calibration();
    config.max_payload_bytes = 256;

    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(evaluation_package());
    let manager = ResourceManager::new(&fabric, config.clone());
    for i in 0..2 {
        let executor = SpotExecutor::new(
            &fabric,
            &format!("xgather-exec-{i}"),
            NodeResources {
                cores: WORKERS as u32,
                memory_mib: 8 * 1024,
            },
            registry.clone(),
            config.clone(),
        );
        manager.register_executor(&executor);
    }

    let reactor = Reactor::new();
    let clock = VirtualClock::shared();
    let sessions: Vec<Session> = (0..2)
        .map(|i| {
            Session::builder(&fabric, &format!("xgather-client-{i}"), &manager, PACKAGE)
                .config(config.clone())
                .workers(WORKERS as u32)
                .memory_mib(1024)
                .polling(PollingMode::Hot)
                .reactor(&reactor)
                .clock(&clock)
                .connect()
                .expect("allocation succeeds")
        })
        .collect();

    let payload = [0x42u8; 16];
    let inputs: Vec<&[u8]> = (0..WORKERS).map(|_| &payload[..]).collect();
    let mut sets: Vec<_> = sessions
        .iter()
        .map(|s| {
            s.function::<[u8], [u8]>("echo")
                .expect("echo deployed")
                .with_output_capacity(16)
                .map_workers(inputs.iter().copied())
                .expect("scatter succeeds")
        })
        .collect();

    // Drain in reverse submission order.
    for set in sets.iter_mut().rev() {
        let mut gathered = 0usize;
        while let Some((_, reply)) = set.wait_any().expect("gather succeeds") {
            assert_eq!(reply.len(), payload.len());
            gathered += 1;
        }
        assert_eq!(gathered, WORKERS);
    }
    drop(sets);

    let stats = reactor.stats();
    assert_eq!(stats.pumped, (2 * WORKERS) as u64);
    assert_eq!(stats.dispatched, (2 * WORKERS) as u64);
    for session in sessions {
        session.close().expect("release succeeds");
    }
}
