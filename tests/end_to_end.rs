//! End-to-end integration tests spanning the resource manager, spot
//! executors, the typed session API and the billing database.

use rfaas::{LifecycleDriver, PollingMode, RFaasError};
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::SimDuration;

#[test]
fn multiple_clients_share_the_executor_pool() {
    let testbed = Testbed::new(2);
    let sessions: Vec<_> = (0..4)
        .map(|i| {
            testbed.allocated_session(
                &format!("client-{i}"),
                2,
                SandboxType::BareMetal,
                PollingMode::Hot,
            )
        })
        .collect();
    assert_eq!(testbed.manager.lease_count(), 4);

    // Every client can invoke independently and receives its own data back.
    for (i, session) in sessions.iter().enumerate() {
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        let payload = vec![i as u8 + 1; 512];
        assert_eq!(echo.invoke(&payload[..]).unwrap(), payload);
    }

    // Closing the sessions returns every core to the pool.
    let total_before = testbed.manager.available_resources().cores;
    for session in sessions {
        session.close().unwrap();
    }
    let total_after = testbed.manager.available_resources().cores;
    assert_eq!(total_after, total_before + 4 * 2);
    assert_eq!(testbed.manager.lease_count(), 0);
}

#[test]
fn leases_are_spread_round_robin_and_exhaustion_is_reported() {
    let testbed = Testbed::new(2);
    // 2 nodes x 36 cores; leases of 20 cores each -> only 2 fit.
    let first = testbed
        .session("c1")
        .workers(20)
        .memory_mib(1024)
        .connect()
        .unwrap();
    let second = testbed
        .session("c2")
        .workers(20)
        .memory_mib(1024)
        .connect()
        .unwrap();
    let first_node = first.lease().unwrap().executor_node.clone();
    let second_node = second.lease().unwrap().executor_node.clone();
    assert_ne!(first_node, second_node, "round-robin placement");

    let err = testbed
        .session("c3")
        .workers(20)
        .memory_mib(1024)
        .connect()
        .unwrap_err();
    assert!(matches!(err, RFaasError::InsufficientResources { .. }));
}

#[test]
fn billing_accumulates_through_rdma_atomics() {
    let testbed = Testbed::new(1);
    let session = testbed.allocated_session(
        "billing-client",
        1,
        SandboxType::BareMetal,
        PollingMode::Hot,
    );
    let lease = session.lease().unwrap().clone();
    let echo = session
        .function::<[u8], [u8]>("echo")
        .unwrap()
        .with_output_capacity(1024 * 1024);
    let payload = workloads::generate_payload(1024 * 1024, 5);
    for _ in 0..5 {
        echo.invoke(&payload[..]).unwrap();
    }
    session.close().unwrap();
    let usage = testbed.manager.lease_usage(&lease);
    // Allocation time must have been recorded; echo itself has no cost model,
    // so compute time may be zero, but the platform cost must be positive.
    assert!(usage.allocation_gib_us > 0, "allocation usage {usage:?}");
    assert!(testbed.manager.total_cost() > 0.0);
}

#[test]
fn warm_oversubscription_rejects_and_client_redirects() {
    let testbed = Testbed::new(1);
    let session = testbed
        .session("oversub-client")
        .memory_mib(1024)
        .polling(PollingMode::Warm)
        .connect()
        .unwrap();
    // Oversubscribe: 4 workers share the single leased core.
    let executor = testbed
        .manager
        .executor(&session.lease().unwrap().executor_node)
        .unwrap();
    let lease = session.lease().unwrap().clone();
    let oversubscribed = executor
        .allocator()
        .allocate_with_workers(&lease, 4, PollingMode::Warm);
    // The single leased core is already used by the first allocation, so the
    // oversubscribed allocation may legitimately fail for lack of resources;
    // the redirection path is covered by the client-level rejection handling
    // exercised when it succeeds.
    if let Ok(result) = oversubscribed {
        assert_eq!(result.workers.len(), 4);
        executor.allocator().deallocate(result.process_id).unwrap();
    }
    session.close().unwrap();
}

#[test]
fn heartbeats_and_lease_expiry_reclaim_resources() {
    let testbed = Testbed::new(2);
    let now = testbed.manager.clock().now();
    assert!(testbed.manager.heartbeat("spot-00", now));
    let failed = testbed
        .manager
        .failed_executors(now + SimDuration::from_secs(60), SimDuration::from_secs(30));
    assert!(failed.contains(&"spot-01".to_string()));
    assert!(!failed.contains(&"spot-00".to_string()) || failed.len() == 2);

    let session = testbed
        .session("expiry-client")
        .memory_mib(512)
        .lease_timeout(SimDuration::from_secs(5))
        .connect()
        .unwrap();
    let expired = testbed
        .manager
        .expired_leases(testbed.manager.clock().now() + SimDuration::from_secs(10));
    assert_eq!(expired.len(), 1);
    testbed.manager.release_lease(expired[0]).unwrap();
    assert_eq!(testbed.manager.lease_count(), 0);
    drop(session);
}

#[test]
fn invocation_after_expiry_gets_lease_expired_and_recovers_transparently() {
    let testbed = Testbed::new(2);
    let session = testbed
        .session("expiry-recovery-client")
        .memory_mib(1024)
        .lease_timeout(SimDuration::from_secs(10))
        .connect()
        .unwrap();
    let first_lease = session.lease().unwrap();

    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    assert_eq!(echo.invoke(&[42u8; 32][..]).unwrap(), vec![42u8; 32]);
    assert_eq!(session.recoveries(), 0);

    // Jump the client far past the lease expiry. The next invocation arrives
    // at the worker with that late timestamp, the worker's clock synchronises
    // to it, and the executor-side enforcement refuses the invocation with
    // LeaseExpired — upon which the session transparently re-allocates and
    // replays it.
    session.clock().advance(SimDuration::from_secs(60));
    assert_eq!(echo.invoke(&[42u8; 32][..]).unwrap(), vec![42u8; 32]);
    assert_eq!(session.recoveries(), 1);
    let second_lease = session.lease().unwrap();
    assert_ne!(second_lease.id, first_lease.id);
    assert!(second_lease.expires_at > first_lease.expires_at);
    // The expired lease is gone from the manager; the fresh one is live.
    assert!(testbed.manager.lease(first_lease.id).is_none());
    assert!(testbed.manager.lease(second_lease.id).is_some());
}

#[test]
fn lease_renewal_keeps_the_worker_past_the_original_expiry() {
    let testbed = Testbed::new(1);
    let session = testbed
        .session("renewal-client")
        .memory_mib(1024)
        .lease_timeout(SimDuration::from_secs(10))
        .connect()
        .unwrap();
    let original_expiry = session.lease().unwrap().expires_at;

    // Renew shortly before the lease would lapse.
    session.clock().advance(SimDuration::from_secs(8));
    let new_expiry = session.extend_lease(SimDuration::from_secs(120)).unwrap();
    assert!(new_expiry > original_expiry);
    let lease = session.lease().unwrap();
    assert_eq!(lease.expires_at, new_expiry);
    assert_eq!(
        testbed.manager.lease(lease.id).unwrap().expires_at,
        new_expiry
    );

    // Well past the original expiry the same worker still serves us — no
    // LeaseExpired, no recovery, same lease.
    session.clock().advance(SimDuration::from_secs(60));
    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    assert_eq!(echo.invoke(&[7u8; 16][..]).unwrap(), vec![7u8; 16]);
    assert_eq!(session.recoveries(), 0);
    assert_eq!(session.lease().unwrap().id, lease.id);
}

#[test]
fn executor_failure_is_detected_and_the_client_recovers_elsewhere() {
    let testbed = Testbed::new(2);
    let driver = LifecycleDriver::new(&testbed.manager);
    let session = testbed
        .session("failover-client")
        .memory_mib(1024)
        .connect()
        .unwrap();
    let lease = session.lease().unwrap();

    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    echo.invoke(&[9u8; 24][..]).unwrap();

    // Both executors heartbeat, then the lease's host dies.
    let t0 = testbed.manager.clock().now();
    driver.step(t0 + SimDuration::from_secs(1));
    let victim = testbed.manager.executor(&lease.executor_node).unwrap();
    victim.fail();
    assert!(!victim.is_alive());

    // The failure detector notices the silence, deregisters the executor and
    // marks its leases terminated.
    let later = t0 + SimDuration::from_secs(1) + testbed.config.heartbeat_timeout * 2;
    let delta = driver.step(later);
    assert_eq!(delta.executors_failed, 1);
    assert_eq!(delta.leases_terminated, 1);
    assert!(testbed.manager.is_lease_terminated(lease.id));
    assert_eq!(testbed.manager.executor_count(), 1);

    // The client's next invocation finds its connections dead, transparently
    // re-allocates from the manager and lands on the surviving executor.
    session.clock().advance_to(later);
    assert_eq!(echo.invoke(&[9u8; 24][..]).unwrap(), vec![9u8; 24]);
    assert_eq!(session.recoveries(), 1);
    let recovered = session.lease().unwrap();
    assert_ne!(recovered.executor_node, lease.executor_node);
}

#[test]
fn stale_futures_share_one_recovery_instead_of_cascading() {
    let testbed = Testbed::new(2);
    let session = testbed
        .session("stale-future-client")
        .memory_mib(1024)
        .lease_timeout(SimDuration::from_secs(10))
        .connect()
        .unwrap();
    let echo = session.function::<[u8], [u8]>("echo").unwrap();

    // Both futures are submitted after the lease expired, so both hit the
    // executor-side LeaseExpired enforcement. The first wait() re-allocates;
    // the second must detect that its allocation epoch is stale and reuse the
    // recovered allocation instead of tearing it down and re-allocating again.
    session.clock().advance(SimDuration::from_secs(60));
    let f1 = echo.submit(&[5u8; 16][..]).unwrap();
    let f2 = echo.submit(&[5u8; 16][..]).unwrap();
    assert_eq!(f1.wait().unwrap(), vec![5u8; 16]);
    assert_eq!(f2.wait().unwrap(), vec![5u8; 16]);
    assert_eq!(
        session.recoveries(),
        1,
        "one expiry must cost one re-allocation, however many futures saw it"
    );
}

#[test]
fn docker_and_bare_metal_executors_coexist() {
    let testbed = Testbed::new(2);
    let bare =
        testbed.allocated_session("bare-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let docker =
        testbed.allocated_session("docker-client", 1, SandboxType::Docker, PollingMode::Hot);
    assert!(
        docker.cold_start().unwrap().total() > bare.cold_start().unwrap().total() * 10,
        "Docker cold start must be much slower than bare metal"
    );
    for session in [&bare, &docker] {
        let echo = session.function::<[u8], [u8]>("echo").unwrap();
        assert_eq!(echo.invoke(&[1u8, 2, 3][..]).unwrap(), vec![1, 2, 3]);
    }
}

#[test]
fn lease_reuse_avoids_repeated_cold_starts() {
    let testbed = Testbed::new(1);
    let session =
        testbed.allocated_session("reuse-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let cold_total = session.cold_start().unwrap().total();
    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    // 100 consecutive warm/hot invocations on the cached lease must cost far
    // less in total than the single cold start.
    let mut total = SimDuration::ZERO;
    for _ in 0..100 {
        let (_, rtt) = echo.invoke_timed(&[7u8; 16][..]).unwrap();
        total += rtt;
    }
    assert!(
        total < cold_total,
        "100 hot invocations ({total}) should cost less than one cold start ({cold_total})"
    );
}
