//! End-to-end integration tests spanning the resource manager, spot
//! executors, the client library and the billing database.

use rfaas::{LeaseRequest, LifecycleDriver, PollingMode, RFaasError};
use rfaas_bench::{Testbed, PACKAGE};
use sandbox::SandboxType;
use sim_core::SimDuration;

#[test]
fn multiple_clients_share_the_executor_pool() {
    let testbed = Testbed::new(2);
    let mut invokers: Vec<_> = (0..4)
        .map(|i| {
            testbed.allocated_invoker(
                &format!("client-{i}"),
                2,
                SandboxType::BareMetal,
                PollingMode::Hot,
            )
        })
        .collect();
    assert_eq!(testbed.manager.lease_count(), 4);

    // Every client can invoke independently and receives its own data back.
    for (i, invoker) in invokers.iter().enumerate() {
        let alloc = invoker.allocator();
        let input = alloc.input(1024);
        let output = alloc.output(1024);
        let payload = vec![i as u8 + 1; 512];
        input.write_payload(&payload).unwrap();
        let (len, _) = invoker.invoke_sync("echo", &input, 512, &output).unwrap();
        assert_eq!(output.read_payload(len).unwrap(), payload);
    }

    // Releasing the leases returns every core to the pool.
    let total_before = testbed.manager.available_resources().cores;
    for invoker in invokers.iter_mut() {
        invoker.deallocate().unwrap();
    }
    let total_after = testbed.manager.available_resources().cores;
    assert_eq!(total_after, total_before + 4 * 2);
    assert_eq!(testbed.manager.lease_count(), 0);
}

#[test]
fn leases_are_spread_round_robin_and_exhaustion_is_reported() {
    let testbed = Testbed::new(2);
    // 2 nodes x 36 cores; leases of 20 cores each -> only 2 fit.
    let mut first = testbed.invoker("c1");
    first
        .allocate(
            LeaseRequest::single_worker(PACKAGE)
                .with_cores(20)
                .with_memory_mib(1024),
            PollingMode::Hot,
        )
        .unwrap();
    let mut second = testbed.invoker("c2");
    second
        .allocate(
            LeaseRequest::single_worker(PACKAGE)
                .with_cores(20)
                .with_memory_mib(1024),
            PollingMode::Hot,
        )
        .unwrap();
    let first_node = first.lease().unwrap().executor_node.clone();
    let second_node = second.lease().unwrap().executor_node.clone();
    assert_ne!(first_node, second_node, "round-robin placement");

    let mut third = testbed.invoker("c3");
    let err = third
        .allocate(
            LeaseRequest::single_worker(PACKAGE)
                .with_cores(20)
                .with_memory_mib(1024),
            PollingMode::Hot,
        )
        .unwrap_err();
    assert!(matches!(err, RFaasError::InsufficientResources { .. }));
}

#[test]
fn billing_accumulates_through_rdma_atomics() {
    let testbed = Testbed::new(1);
    let mut invoker = testbed.allocated_invoker(
        "billing-client",
        1,
        SandboxType::BareMetal,
        PollingMode::Hot,
    );
    let lease = invoker.lease().unwrap().clone();
    let alloc = invoker.allocator();
    let input = alloc.input(1024 * 1024);
    let output = alloc.output(1024 * 1024);
    input
        .write_payload(&workloads::generate_payload(1024 * 1024, 5))
        .unwrap();
    for _ in 0..5 {
        invoker
            .invoke_sync("echo", &input, 1024 * 1024, &output)
            .unwrap();
    }
    invoker.deallocate().unwrap();
    let usage = testbed.manager.lease_usage(&lease);
    // Allocation time must have been recorded; echo itself has no cost model,
    // so compute time may be zero, but the platform cost must be positive.
    assert!(usage.allocation_gib_us > 0, "allocation usage {usage:?}");
    assert!(testbed.manager.total_cost() > 0.0);
}

#[test]
fn warm_oversubscription_rejects_and_client_redirects() {
    let testbed = Testbed::new(1);
    let mut invoker = testbed.invoker("oversub-client");
    invoker
        .allocate(
            LeaseRequest::single_worker(PACKAGE)
                .with_cores(1)
                .with_memory_mib(1024),
            PollingMode::Warm,
        )
        .unwrap();
    // Oversubscribe: 4 workers share the single leased core.
    let executor = testbed
        .manager
        .executor(&invoker.lease().unwrap().executor_node)
        .unwrap();
    let lease = invoker.lease().unwrap().clone();
    let oversubscribed = executor
        .allocator()
        .allocate_with_workers(&lease, 4, PollingMode::Warm);
    // The single leased core is already used by the first allocation, so the
    // oversubscribed allocation may legitimately fail for lack of resources;
    // the redirection path is covered by the client-level rejection handling
    // exercised when it succeeds.
    if let Ok(result) = oversubscribed {
        assert_eq!(result.workers.len(), 4);
        executor.allocator().deallocate(result.process_id).unwrap();
    }
    invoker.deallocate().unwrap();
}

#[test]
fn heartbeats_and_lease_expiry_reclaim_resources() {
    let testbed = Testbed::new(2);
    let now = testbed.manager.clock().now();
    assert!(testbed.manager.heartbeat("spot-00", now));
    let failed = testbed
        .manager
        .failed_executors(now + SimDuration::from_secs(60), SimDuration::from_secs(30));
    assert!(failed.contains(&"spot-01".to_string()));
    assert!(!failed.contains(&"spot-00".to_string()) || failed.len() == 2);

    let mut invoker = testbed.invoker("expiry-client");
    let mut request = LeaseRequest::single_worker(PACKAGE)
        .with_cores(1)
        .with_memory_mib(512);
    request.timeout = SimDuration::from_secs(5);
    invoker.allocate(request, PollingMode::Hot).unwrap();
    let expired = testbed
        .manager
        .expired_leases(testbed.manager.clock().now() + SimDuration::from_secs(10));
    assert_eq!(expired.len(), 1);
    testbed.manager.release_lease(expired[0]).unwrap();
    assert_eq!(testbed.manager.lease_count(), 0);
}

#[test]
fn invocation_after_expiry_gets_lease_expired_and_recovers_transparently() {
    let testbed = Testbed::new(2);
    let mut invoker = testbed.invoker("expiry-recovery-client");
    let mut request = LeaseRequest::single_worker(PACKAGE)
        .with_cores(1)
        .with_memory_mib(1024);
    request.timeout = SimDuration::from_secs(10);
    invoker.allocate(request, PollingMode::Hot).unwrap();
    let first_lease = invoker.lease().unwrap();

    let alloc = invoker.allocator();
    let input = alloc.input(256);
    let output = alloc.output(256);
    input.write_payload(&[42u8; 32]).unwrap();
    let (len, _) = invoker.invoke_sync("echo", &input, 32, &output).unwrap();
    assert_eq!(len, 32);
    assert_eq!(invoker.recoveries(), 0);

    // Jump the client far past the lease expiry. The next invocation arrives
    // at the worker with that late timestamp, the worker's clock synchronises
    // to it, and the executor-side enforcement refuses the invocation with
    // LeaseExpired — upon which the invoker transparently re-allocates and
    // replays it.
    invoker.clock().advance(SimDuration::from_secs(60));
    let (len, _) = invoker.invoke_sync("echo", &input, 32, &output).unwrap();
    assert_eq!(len, 32);
    assert_eq!(output.read_payload(32).unwrap(), vec![42u8; 32]);
    assert_eq!(invoker.recoveries(), 1);
    let second_lease = invoker.lease().unwrap();
    assert_ne!(second_lease.id, first_lease.id);
    assert!(second_lease.expires_at > first_lease.expires_at);
    // The expired lease is gone from the manager; the fresh one is live.
    assert!(testbed.manager.lease(first_lease.id).is_none());
    assert!(testbed.manager.lease(second_lease.id).is_some());
}

#[test]
fn lease_renewal_keeps_the_worker_past_the_original_expiry() {
    let testbed = Testbed::new(1);
    let mut invoker = testbed.invoker("renewal-client");
    let mut request = LeaseRequest::single_worker(PACKAGE)
        .with_cores(1)
        .with_memory_mib(1024);
    request.timeout = SimDuration::from_secs(10);
    invoker.allocate(request, PollingMode::Hot).unwrap();
    let original_expiry = invoker.lease().unwrap().expires_at;

    // Renew shortly before the lease would lapse.
    invoker.clock().advance(SimDuration::from_secs(8));
    let new_expiry = invoker.extend_lease(SimDuration::from_secs(120)).unwrap();
    assert!(new_expiry > original_expiry);
    let lease = invoker.lease().unwrap();
    assert_eq!(lease.expires_at, new_expiry);
    assert_eq!(
        testbed.manager.lease(lease.id).unwrap().expires_at,
        new_expiry
    );

    // Well past the original expiry the same worker still serves us — no
    // LeaseExpired, no recovery, same lease.
    invoker.clock().advance(SimDuration::from_secs(60));
    let alloc = invoker.allocator();
    let input = alloc.input(128);
    let output = alloc.output(128);
    input.write_payload(&[7u8; 16]).unwrap();
    let (len, _) = invoker.invoke_sync("echo", &input, 16, &output).unwrap();
    assert_eq!(len, 16);
    assert_eq!(invoker.recoveries(), 0);
    assert_eq!(invoker.lease().unwrap().id, lease.id);
}

#[test]
fn executor_failure_is_detected_and_the_client_recovers_elsewhere() {
    let testbed = Testbed::new(2);
    let driver = LifecycleDriver::new(&testbed.manager);
    let mut invoker = testbed.invoker("failover-client");
    invoker
        .allocate(
            LeaseRequest::single_worker(PACKAGE)
                .with_cores(1)
                .with_memory_mib(1024),
            PollingMode::Hot,
        )
        .unwrap();
    let lease = invoker.lease().unwrap();

    let alloc = invoker.allocator();
    let input = alloc.input(256);
    let output = alloc.output(256);
    input.write_payload(&[9u8; 24]).unwrap();
    invoker.invoke_sync("echo", &input, 24, &output).unwrap();

    // Both executors heartbeat, then the lease's host dies.
    let t0 = testbed.manager.clock().now();
    driver.step(t0 + SimDuration::from_secs(1));
    let victim = testbed.manager.executor(&lease.executor_node).unwrap();
    victim.fail();
    assert!(!victim.is_alive());

    // The failure detector notices the silence, deregisters the executor and
    // marks its leases terminated.
    let later = t0 + SimDuration::from_secs(1) + testbed.config.heartbeat_timeout * 2;
    let delta = driver.step(later);
    assert_eq!(delta.executors_failed, 1);
    assert_eq!(delta.leases_terminated, 1);
    assert!(testbed.manager.is_lease_terminated(lease.id));
    assert_eq!(testbed.manager.executor_count(), 1);

    // The client's next invocation finds its connections dead, transparently
    // re-allocates from the manager and lands on the surviving executor.
    invoker.clock().advance_to(later);
    let (len, _) = invoker.invoke_sync("echo", &input, 24, &output).unwrap();
    assert_eq!(len, 24);
    assert_eq!(output.read_payload(24).unwrap(), vec![9u8; 24]);
    assert_eq!(invoker.recoveries(), 1);
    let recovered = invoker.lease().unwrap();
    assert_ne!(recovered.executor_node, lease.executor_node);
}

#[test]
fn stale_futures_share_one_recovery_instead_of_cascading() {
    let testbed = Testbed::new(2);
    let mut invoker = testbed.invoker("stale-future-client");
    let mut request = LeaseRequest::single_worker(PACKAGE)
        .with_cores(1)
        .with_memory_mib(1024);
    request.timeout = SimDuration::from_secs(10);
    invoker.allocate(request, PollingMode::Hot).unwrap();

    let alloc = invoker.allocator();
    let inputs: Vec<_> = (0..2).map(|_| alloc.input(128)).collect();
    let outputs: Vec<_> = (0..2).map(|_| alloc.output(128)).collect();
    for input in &inputs {
        input.write_payload(&[5u8; 16]).unwrap();
    }

    // Both futures are submitted after the lease expired, so both hit the
    // executor-side LeaseExpired enforcement. The first wait() re-allocates;
    // the second must detect that its allocation epoch is stale and reuse the
    // recovered allocation instead of tearing it down and re-allocating again.
    invoker.clock().advance(SimDuration::from_secs(60));
    let f1 = invoker.submit("echo", &inputs[0], 16, &outputs[0]).unwrap();
    let f2 = invoker.submit("echo", &inputs[1], 16, &outputs[1]).unwrap();
    assert_eq!(f1.wait().unwrap(), 16);
    assert_eq!(f2.wait().unwrap(), 16);
    assert_eq!(
        invoker.recoveries(),
        1,
        "one expiry must cost one re-allocation, however many futures saw it"
    );
    assert_eq!(outputs[1].read_payload(16).unwrap(), vec![5u8; 16]);
}

#[test]
fn docker_and_bare_metal_executors_coexist() {
    let testbed = Testbed::new(2);
    let bare =
        testbed.allocated_invoker("bare-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let docker =
        testbed.allocated_invoker("docker-client", 1, SandboxType::Docker, PollingMode::Hot);
    assert!(
        docker.cold_start().unwrap().total() > bare.cold_start().unwrap().total() * 10,
        "Docker cold start must be much slower than bare metal"
    );
    for invoker in [&bare, &docker] {
        let alloc = invoker.allocator();
        let input = alloc.input(128);
        let output = alloc.output(128);
        input.write_payload(&[1, 2, 3]).unwrap();
        let (len, _) = invoker.invoke_sync("echo", &input, 3, &output).unwrap();
        assert_eq!(len, 3);
    }
}

#[test]
fn lease_reuse_avoids_repeated_cold_starts() {
    let testbed = Testbed::new(1);
    let invoker =
        testbed.allocated_invoker("reuse-client", 1, SandboxType::BareMetal, PollingMode::Hot);
    let cold_total = invoker.cold_start().unwrap().total();
    let alloc = invoker.allocator();
    let input = alloc.input(64);
    let output = alloc.output(64);
    input.write_payload(&[7u8; 16]).unwrap();
    // 100 consecutive warm/hot invocations on the cached lease must cost far
    // less in total than the single cold start.
    let mut total = SimDuration::ZERO;
    for _ in 0..100 {
        let (_, rtt) = invoker.invoke_sync("echo", &input, 16, &output).unwrap();
        total += rtt;
    }
    assert!(
        total < cold_total,
        "100 hot invocations ({total}) should cost less than one cold start ({cold_total})"
    );
}
