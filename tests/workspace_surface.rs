//! Smoke tests for the workspace surface: the umbrella crate must re-export
//! every layer, and the `rfaas` crate-level doc example (lease → hot invoke →
//! deallocate) must keep working both as a doctest (`cargo test --doc -p
//! rfaas`, run by tier-1 and CI) and as this compiled mirror of it — so a
//! regression in the documented entry-point flow fails the suite even if
//! doctests are filtered out.

use rfaas_repro::cluster_sim::NodeResources;
use rfaas_repro::rdma_fabric::Fabric;
use rfaas_repro::rfaas::{RFaasConfig, ResourceManager, Session, SpotExecutor};
use rfaas_repro::sandbox::{echo_function, CodePackage, FunctionRegistry};

/// Mirror of the `rfaas` crate-level doc example, invoked through the
/// umbrella crate's re-exports.
#[test]
fn rfaas_doc_example_flow_runs() {
    let fabric = Fabric::with_defaults();
    let registry = FunctionRegistry::new();
    registry.deploy(CodePackage::minimal("demo").with_function(echo_function()));
    let manager = ResourceManager::new(&fabric, RFaasConfig::default());
    let executor = SpotExecutor::new(
        &fabric,
        "node-1",
        NodeResources {
            cores: 4,
            memory_mib: 8192,
        },
        registry,
        RFaasConfig::default(),
    );
    manager.register_executor(&executor);

    let session = Session::builder(&fabric, "client", &manager, "demo")
        .connect()
        .unwrap();
    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    let (reply, rtt) = echo.invoke_timed(b"hello rfaas").unwrap();
    assert_eq!(reply, b"hello rfaas");
    assert!(rtt.as_micros_f64() < 50.0);
    session.close().unwrap();
}

/// Every workspace layer is reachable through the umbrella crate, in DAG
/// order from `sim_core` at the bottom upward.
#[test]
fn umbrella_reexports_every_layer() {
    // sim-core: virtual time.
    let t = rfaas_repro::sim_core::SimDuration::from_micros(3);
    assert_eq!(t.as_nanos(), 3_000);

    // rdma-fabric: NIC cost profile.
    let profile = rfaas_repro::rdma_fabric::NicProfile::default();
    assert!(profile.one_way_latency.as_nanos() > 0);

    // net-stack: base64 codec used by the REST baselines.
    assert_eq!(rfaas_repro::net_stack::base64_encode(b"foo"), "Zm9v");

    // cluster-sim: the paper's evaluation node shape.
    let node = rfaas_repro::cluster_sim::NodeResources::xeon_gold_6154_dual();
    assert_eq!(node.cores, 36);

    // sandbox: the echo function ships in every registry.
    assert_eq!(rfaas_repro::sandbox::echo_function().name(), "echo");

    // workloads: deterministic payload generation.
    let payload = rfaas_repro::workloads::generate_payload(128, 7);
    assert_eq!(payload.len(), 128);
    assert_eq!(payload, rfaas_repro::workloads::generate_payload(128, 7));

    // faas-baselines: REST-based platforms exist for comparison.
    let lambda = rfaas_repro::faas_baselines::aws_lambda();
    assert!(lambda.accepts_payload(1024));

    // mpi-sim: cost model of the message-passing layer.
    let mpi = rfaas_repro::mpi_sim::MpiCostModel::cluster_100g();
    assert!(mpi.latency.as_nanos() > 0);
}
