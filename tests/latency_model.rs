//! Integration tests pinning the reproduction's headline performance claims
//! to the numbers reported in the paper (Sec. V-A, V-C, V-D).

use faas_baselines::{aws_lambda, nightcore, openwhisk};
use rfaas::PollingMode;
use rfaas_bench::Testbed;
use sandbox::SandboxType;
use sim_core::{median, SimDuration};

fn measure_median_us(
    sandbox: SandboxType,
    mode: PollingMode,
    payload: usize,
    repetitions: usize,
) -> f64 {
    let testbed = Testbed::new(1);
    let session = testbed.allocated_session("latency-client", 1, sandbox, mode);
    let echo = session.function::<[u8], [u8]>("echo").unwrap();
    let data = workloads::generate_payload(payload, 3);
    echo.invoke(&data[..]).unwrap();
    let samples: Vec<f64> = (0..repetitions)
        .map(|_| echo.invoke_timed(&data[..]).unwrap().1.as_micros_f64())
        .collect();
    median(&samples)
}

#[test]
fn hot_invocation_latency_matches_paper() {
    // Paper: 3.96 us hot latency, ~326 ns overhead over the 3.69 us RDMA RTT.
    let hot = measure_median_us(SandboxType::BareMetal, PollingMode::Hot, 8, 100);
    assert!((3.5..4.6).contains(&hot), "hot median {hot} us");
    let rdma = rdma_fabric::NicProfile::mellanox_cx5_100g()
        .write_pingpong_rtt(8)
        .as_micros_f64();
    let overhead_ns = (hot - rdma) * 1_000.0;
    assert!(
        (150.0..650.0).contains(&overhead_ns),
        "hot overhead {overhead_ns} ns"
    );
}

#[test]
fn warm_invocation_latency_matches_paper() {
    // Paper: 8.2 us warm latency (~4.67 us overhead over raw RDMA).
    let warm = measure_median_us(SandboxType::BareMetal, PollingMode::Warm, 8, 100);
    assert!((6.5..10.5).contains(&warm), "warm median {warm} us");
    let hot = measure_median_us(SandboxType::BareMetal, PollingMode::Hot, 8, 50);
    assert!(
        warm > hot + 2.0,
        "warm ({warm}) must be several us above hot ({hot})"
    );
}

#[test]
fn docker_adds_nanoseconds_not_microseconds() {
    // Paper: ~50 ns extra for hot, ~650 ns for warm invocations in Docker.
    let bare_hot = measure_median_us(SandboxType::BareMetal, PollingMode::Hot, 8, 80);
    let docker_hot = measure_median_us(SandboxType::Docker, PollingMode::Hot, 8, 80);
    let hot_delta_ns = (docker_hot - bare_hot) * 1_000.0;
    assert!(
        (10.0..300.0).contains(&hot_delta_ns),
        "Docker hot delta {hot_delta_ns} ns"
    );

    let bare_warm = measure_median_us(SandboxType::BareMetal, PollingMode::Warm, 8, 80);
    let docker_warm = measure_median_us(SandboxType::Docker, PollingMode::Warm, 8, 80);
    let warm_delta_ns = (docker_warm - bare_warm) * 1_000.0;
    assert!(
        (300.0..1_300.0).contains(&warm_delta_ns),
        "Docker warm delta {warm_delta_ns} ns"
    );
}

#[test]
fn bandwidth_scales_to_the_link_limit() {
    // A 1 MiB echo moves 2 MiB over the wire; at ~11.6 GiB/s that is ~170 us,
    // so the payload-dependent part must dominate and goodput must approach
    // the link bandwidth (paper: "achieves the available link bandwidth").
    let mib = 1024 * 1024;
    let rtt_us = measure_median_us(SandboxType::BareMetal, PollingMode::Hot, mib, 10);
    let goodput_gib_s = 2.0 * (mib as f64) / (rtt_us * 1e-6) / (1024.0 * 1024.0 * 1024.0);
    assert!(goodput_gib_s > 8.0, "goodput {goodput_gib_s} GiB/s");
    assert!(
        goodput_gib_s < 12.0,
        "goodput cannot exceed the link: {goodput_gib_s} GiB/s"
    );
}

#[test]
fn speedups_over_baselines_match_paper_orders_of_magnitude() {
    let kb = 1024;
    let rfaas_us = measure_median_us(SandboxType::BareMetal, PollingMode::Hot, kb, 50);
    let aws_us = aws_lambda()
        .invoke_rtt(kb, kb, SimDuration::ZERO)
        .as_micros_f64();
    let ow_us = openwhisk()
        .invoke_rtt(kb, kb, SimDuration::ZERO)
        .as_micros_f64();
    let nc_us = nightcore()
        .invoke_rtt(kb, kb, SimDuration::ZERO)
        .as_micros_f64();
    // Paper: 695x-3692x vs AWS, 5904x-22406x vs OpenWhisk, 23x-39x vs Nightcore.
    assert!(
        (500.0..6_000.0).contains(&(aws_us / rfaas_us)),
        "AWS ratio {}",
        aws_us / rfaas_us
    );
    assert!(
        (4_000.0..40_000.0).contains(&(ow_us / rfaas_us)),
        "OpenWhisk ratio {}",
        ow_us / rfaas_us
    );
    assert!(
        (15.0..80.0).contains(&(nc_us / rfaas_us)),
        "nightcore ratio {}",
        nc_us / rfaas_us
    );
}

#[test]
fn parallel_hot_invocations_scale_until_bandwidth_saturates() {
    // Small payloads: batch RTT stays within a few microseconds of a single
    // invocation. Large payloads: batch RTT grows roughly linearly with the
    // number of workers because the client link saturates (Fig. 10).
    let testbed = Testbed::new(1);
    let workers = 8usize;
    let session = testbed.allocated_session(
        "parallel-client",
        workers as u32,
        SandboxType::BareMetal,
        PollingMode::Hot,
    );
    let echo = session.function::<[u8], [u8]>("echo").unwrap();

    let batch = |payload: usize| -> f64 {
        let data = workloads::generate_payload(payload, 1);
        let chunks: Vec<&[u8]> = (0..workers).map(|_| data.as_slice()).collect();
        let start = session.clock().now();
        let set = echo.map_workers(chunks.iter().copied()).unwrap();
        set.wait_all().unwrap();
        session
            .clock()
            .now()
            .saturating_since(start)
            .as_micros_f64()
    };

    let small = batch(1024);
    assert!(small < 30.0, "8-worker 1 kB batch took {small} us");

    let large = batch(1024 * 1024);
    let one_mib_serialization = rdma_fabric::NicProfile::mellanox_cx5_100g()
        .serialization(1024 * 1024)
        .as_micros_f64();
    assert!(
        large > (workers as f64 - 1.0) * one_mib_serialization,
        "8-worker 1 MiB batch ({large} us) must be bounded by the client link"
    );
}
